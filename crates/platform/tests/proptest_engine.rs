//! Engine-equivalence property: on randomized small topologies the
//! event-driven engine must be *bit-identical* to the exhaustive
//! lock-step reference — same block schedules, FIFO contents, counters,
//! ring statistics and trace event logs.
//!
//! The generated platforms deliberately cover the engine's tricky spots:
//! non-adjacent ring links (multi-hop flit transit that the ring-only
//! fast-forward must replay exactly), one or two accelerators per chain
//! (credit-inert forwarding), one or two gateway pairs (same-cycle FIFO
//! coupling between tiles under selective stepping), multiple streams per
//! gateway (round-robin reconfiguration), and TDM processors with
//! non-trivial budgets (bulk slot replay).

use proptest::prelude::*;
use streamgate_platform::{
    AcceleratorTile, CFifo, GatewayPair, PassthroughKernel, ProcessorTile, RateSource, ScaleKernel,
    SinkTask, StepMode, StreamConfig, StreamKernel, System,
};

#[derive(Clone, Debug)]
struct Topo {
    two_gateways: bool,
    chain_len: usize, // accelerators in gateway A's chain (1 or 2)
    streams_a: usize, // streams multiplexed over gateway A (1..=3)
    epsilon: u64,     // DMA cycles per sample
    delta: u64,       // exit-copy cycles per sample
    rho: u64,         // accelerator cycles per sample
    reconfig: u64,    // R_s
    eta: usize,       // block size
    in_cap: usize,
    out_cap: usize,
    src_interval: u64,
    sink_interval: u64,
    sink_budget: u64,
    cycles: u64,
}

fn topo_strategy() -> impl Strategy<Value = Topo> {
    (
        (0u64..2, 1usize..3, 1usize..4),
        (1u64..8, 1u64..3, 1u64..6, 0u64..200),
        (2usize..24, 16usize..96, 64usize..512),
        (1u64..40, 1u64..16, 1u64..3, 4_000u64..12_000),
    )
        .prop_map(
            |(
                (two_gw, chain_len, streams_a),
                (epsilon, delta, rho, reconfig),
                (eta, in_cap, out_cap),
                (src_interval, sink_interval, sink_budget, cycles),
            )| Topo {
                two_gateways: two_gw == 1,
                chain_len,
                streams_a,
                epsilon,
                delta,
                rho,
                reconfig,
                eta,
                in_cap: in_cap.max(eta),
                out_cap: out_cap.max(2 * eta),
                src_interval,
                sink_interval,
                sink_budget,
                cycles,
            },
        )
}

/// Kernel chain for one stream of gateway A (one kernel per chain stage).
fn kernels(chain_len: usize, gain: f64) -> Vec<Box<dyn StreamKernel>> {
    let mut v: Vec<Box<dyn StreamKernel>> = vec![Box::new(ScaleKernel::new(gain))];
    if chain_len == 2 {
        v.push(Box::new(PassthroughKernel));
    }
    v
}

/// Ring stations (n = 10): 0 FE processor, 1 gwA entry, 3 accel A0
/// (upstream node 1 — two hops, deliberately *not* ring-adjacent),
/// 4 accel A1 (optional), 6 gwA exit, 2 gwB entry (optional), 5 accel B0
/// (three hops from its upstream), 8 gwB exit, 9 consumer processor.
fn build(t: &Topo) -> System {
    let mut sys = System::new(10);

    // --- gateway A: FIFOs, chain, streams ---
    let mut ins_a = Vec::new();
    let mut outs_a = Vec::new();
    for s in 0..t.streams_a {
        ins_a.push(sys.add_fifo(CFifo::new(format!("inA{s}"), t.in_cap)));
        outs_a.push(sys.add_fifo(CFifo::new(format!("outA{s}"), t.out_cap)));
    }
    let (first_node, last_node, last_stream) = if t.chain_len == 2 {
        (3, 4, 12)
    } else {
        (3, 3, 11)
    };
    let a0 = sys.add_accel(AcceleratorTile::new(
        "A0",
        3,
        1,
        10,
        if t.chain_len == 2 { 4 } else { 6 },
        11,
        2,
        t.rho,
    ));
    let mut chain = vec![a0];
    if t.chain_len == 2 {
        chain.push(sys.add_accel(AcceleratorTile::new("A1", 4, 3, 11, 6, 12, 2, t.rho)));
    }
    let mut gw_a = GatewayPair::new(
        "gwA",
        1,
        6,
        chain,
        first_node,
        10,
        last_node,
        last_stream,
        2,
        t.epsilon,
        t.delta,
    );
    for s in 0..t.streams_a {
        gw_a.add_stream(StreamConfig::new(
            format!("sA{s}"),
            ins_a[s],
            outs_a[s],
            t.eta,
            t.eta,
            t.reconfig,
            kernels(t.chain_len, 2.0 + s as f64),
        ));
    }
    sys.add_gateway(gw_a);

    // --- optional gateway B with its own accelerator ---
    let mut io_b = None;
    if t.two_gateways {
        let ib = sys.add_fifo(CFifo::new("inB", t.in_cap));
        let ob = sys.add_fifo(CFifo::new("outB", t.out_cap));
        let b0 = sys.add_accel(AcceleratorTile::new("B0", 5, 2, 20, 8, 21, 2, t.rho));
        let mut gw_b = GatewayPair::new("gwB", 2, 8, vec![b0], 5, 20, 5, 21, 2, t.epsilon, t.delta);
        gw_b.add_stream(StreamConfig::new(
            "sB",
            ib,
            ob,
            t.eta,
            t.eta,
            t.reconfig,
            vec![Box::new(ScaleKernel::new(7.0))],
        ));
        sys.add_gateway(gw_b);
        io_b = Some((ib, ob));
    }

    // --- front-end processor: one rate source per input ---
    let mut fe = ProcessorTile::new("FE", 0);
    for (s, f) in ins_a.iter().enumerate() {
        let base = s as f64;
        fe.add_task(
            Box::new(RateSource::new(
                f.0,
                t.src_interval,
                Box::new(move |i| (base + i as f64, 0.25)),
            )),
            1 + (s as u64 % 2),
        );
    }
    if let Some((ib, _)) = io_b {
        fe.add_task(
            Box::new(RateSource::new(
                ib.0,
                t.src_interval + 1,
                Box::new(|i| (-(i as f64), 0.5)),
            )),
            1,
        );
    }
    sys.add_processor(fe);

    // --- consumer processor: one sink per output (TDM budgets) ---
    let mut consumer = ProcessorTile::new("consumer", 9);
    for f in &outs_a {
        consumer.add_task(Box::new(SinkTask::new(f.0, t.sink_interval)), t.sink_budget);
    }
    if let Some((_, ob)) = io_b {
        consumer.add_task(Box::new(SinkTask::new(ob.0, t.sink_interval)), 1);
    }
    sys.add_processor(consumer);

    sys
}

/// Run to completion in `mode` and flush the trace.
fn run(t: &Topo, mode: StepMode) -> System {
    let mut sys = build(t);
    sys.step_mode = mode;
    sys.enable_tracing(64);
    sys.run(t.cycles);
    let now = sys.cycle();
    sys.tracer.finish(now);
    sys
}

fn assert_identical(mut ex: System, mut ev: System) -> Result<(), TestCaseError> {
    prop_assert_eq!(ex.cycle(), ev.cycle());
    for (i, (a, b)) in ex.fifos.iter_mut().zip(ev.fifos.iter_mut()).enumerate() {
        prop_assert_eq!(a.pushed, b.pushed, "fifo {} pushed", i);
        prop_assert_eq!(a.popped, b.popped, "fifo {} popped", i);
        prop_assert_eq!(a.high_water(), b.high_water(), "fifo {} high-water", i);
        prop_assert_eq!(a.len(), b.len(), "fifo {} level", i);
        // Residual contents, sample by sample.
        while let (Some(x), Some(y)) = (a.peek().copied(), b.peek().copied()) {
            prop_assert_eq!(x, y, "fifo {} contents", i);
            a.pop();
            b.pop();
        }
    }
    for (i, (a, b)) in ex.gateways.iter().zip(ev.gateways.iter()).enumerate() {
        prop_assert_eq!(
            format!("{:?}", a.blocks),
            format!("{:?}", b.blocks),
            "gateway {} block records",
            i
        );
        prop_assert_eq!(
            a.dma_busy_cycles,
            b.dma_busy_cycles,
            "gateway {} dma busy",
            i
        );
        prop_assert_eq!(a.idle_cycles, b.idle_cycles, "gateway {} idle", i);
        prop_assert_eq!(
            a.reconfig_cycles_total,
            b.reconfig_cycles_total,
            "gateway {} reconfig",
            i
        );
    }
    for (i, (a, b)) in ex.accels.iter().zip(ev.accels.iter()).enumerate() {
        prop_assert_eq!(a.busy_cycles, b.busy_cycles, "accel {} busy", i);
        prop_assert_eq!(a.samples_in, b.samples_in, "accel {} in", i);
        prop_assert_eq!(a.samples_out, b.samples_out, "accel {} out", i);
    }
    for (i, (a, b)) in ex.processors.iter().zip(ev.processors.iter()).enumerate() {
        prop_assert_eq!(a.busy_cycles, b.busy_cycles, "processor {} busy", i);
        prop_assert_eq!(a.total_cycles, b.total_cycles, "processor {} total", i);
    }
    for r in 0..2 {
        let (a, b) = (&ex.ring.stats[r], &ev.ring.stats[r]);
        prop_assert_eq!(a.delivered, b.delivered, "ring {} delivered", r);
        prop_assert_eq!(a.total_latency, b.total_latency, "ring {} latency", r);
        prop_assert_eq!(a.max_latency, b.max_latency, "ring {} max latency", r);
        prop_assert_eq!(a.injection_stalls, b.injection_stalls, "ring {} stalls", r);
    }
    let (ea, eb) = (ex.tracer.events(), ev.tracer.events());
    if let Some(d) = ea.iter().zip(eb.iter()).position(|(x, y)| x != y) {
        prop_assert_eq!(&ea[d], &eb[d], "first trace divergence at index {}", d);
    }
    prop_assert_eq!(ea.len(), eb.len(), "trace event counts");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn event_driven_is_bit_identical_to_exhaustive(t in topo_strategy()) {
        let ex = run(&t, StepMode::Exhaustive);
        let ev = run(&t, StepMode::EventDriven);
        assert_identical(ex, ev)?;
    }
}
