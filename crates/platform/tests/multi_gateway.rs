//! Two independent gateway pairs (as in the paper's Fig. 1, G0/G1 and
//! G2/G3) share one dual ring: flows must not interfere beyond ring
//! bandwidth, and stream demultiplexing must never mix samples up.

use streamgate_platform::{AcceleratorTile, CFifo, GatewayPair, ScaleKernel, StreamConfig, System};

/// Ring stations: 0 entryA, 1 accA, 2 exitA, 3 entryB, 4 accB, 5 exitB.
fn build() -> (System, [usize; 2]) {
    let mut sys = System::new(6);
    let ia = sys.add_fifo(CFifo::new("ia", 4096));
    let oa = sys.add_fifo(CFifo::new("oa", 1 << 20));
    let ib = sys.add_fifo(CFifo::new("ib", 4096));
    let ob = sys.add_fifo(CFifo::new("ob", 1 << 20));
    let acc_a = sys.add_accel(AcceleratorTile::new("accA", 1, 0, 10, 2, 11, 2, 1));
    let acc_b = sys.add_accel(AcceleratorTile::new("accB", 4, 3, 20, 5, 21, 2, 1));
    let mut gw_a = GatewayPair::new("gwA", 0, 2, vec![acc_a], 1, 10, 1, 11, 2, 2, 1);
    gw_a.add_stream(StreamConfig::new(
        "sA",
        ia,
        oa,
        16,
        16,
        30,
        vec![Box::new(ScaleKernel::new(10.0))],
    ));
    let mut gw_b = GatewayPair::new("gwB", 3, 5, vec![acc_b], 4, 20, 4, 21, 2, 2, 1);
    gw_b.add_stream(StreamConfig::new(
        "sB",
        ib,
        ob,
        8,
        8,
        30,
        vec![Box::new(ScaleKernel::new(100.0))],
    ));
    let a = sys.add_gateway(gw_a);
    let b = sys.add_gateway(gw_b);
    for k in 0..1024 {
        sys.fifos[ia.0].try_push((k as f64, 0.0), 0);
        sys.fifos[ib.0].try_push((k as f64, 0.0), 0);
    }
    (sys, [a, b])
}

#[test]
fn concurrent_gateways_do_not_cross_talk() {
    let (mut sys, [a, b]) = build();
    sys.run(60_000);
    assert!(sys.gateways[a].stream(0).blocks_done >= 10);
    assert!(sys.gateways[b].stream(0).blocks_done >= 10);
    // Output FIFOs hold each stream's own scaled values, in order.
    let oa = sys.gateways[a].stream(0).output;
    let ob = sys.gateways[b].stream(0).output;
    for k in 0..64 {
        assert_eq!(
            sys.fifos[oa.0].pop(),
            Some((k as f64 * 10.0, 0.0)),
            "gwA token {k}"
        );
    }
    for k in 0..64 {
        assert_eq!(
            sys.fifos[ob.0].pop(),
            Some((k as f64 * 100.0, 0.0)),
            "gwB token {k}"
        );
    }
}

#[test]
fn concurrent_throughput_close_to_isolated() {
    // Run gwA alone, then with gwB active: ring capacity is ample, so gwA's
    // block rate must be nearly unchanged (guaranteed-throughput claim).
    let (mut both, [a, _b]) = build();
    both.run(60_000);
    let blocks_both = both.gateways[a].stream(0).blocks_done;

    let mut alone = {
        let (mut sys, _) = build();
        // Starve gateway B by draining its input FIFO.
        let ib = sys.gateways[1].stream(0).input;
        while sys.fifos[ib.0].pop().is_some() {}
        sys
    };
    alone.run(60_000);
    let blocks_alone = alone.gateways[a].stream(0).blocks_done;

    assert!(
        blocks_both * 10 >= blocks_alone * 9,
        "sharing the ring cost more than 10%: {blocks_both} vs {blocks_alone}"
    );
}
