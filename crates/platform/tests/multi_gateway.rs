//! Two independent gateway pairs (as in the paper's Fig. 1, G0/G1 and
//! G2/G3) share one dual ring: flows must not interfere beyond ring
//! bandwidth, and stream demultiplexing must never mix samples up.
//!
//! The `shared_` tests go further (Fig. 10): two gateway pairs share one
//! *physical accelerator*, claiming and releasing it block by block.

use streamgate_platform::{
    AcceleratorTile, CFifo, GatewayPair, ScaleKernel, StepMode, StreamConfig, System,
};

/// Ring stations: 0 entryA, 1 accA, 2 exitA, 3 entryB, 4 accB, 5 exitB.
fn build() -> (System, [usize; 2]) {
    let mut sys = System::new(6);
    let ia = sys.add_fifo(CFifo::new("ia", 4096));
    let oa = sys.add_fifo(CFifo::new("oa", 1 << 20));
    let ib = sys.add_fifo(CFifo::new("ib", 4096));
    let ob = sys.add_fifo(CFifo::new("ob", 1 << 20));
    let acc_a = sys.add_accel(AcceleratorTile::new("accA", 1, 0, 10, 2, 11, 2, 1));
    let acc_b = sys.add_accel(AcceleratorTile::new("accB", 4, 3, 20, 5, 21, 2, 1));
    let mut gw_a = GatewayPair::new("gwA", 0, 2, vec![acc_a], 1, 10, 1, 11, 2, 2, 1);
    gw_a.add_stream(StreamConfig::new(
        "sA",
        ia,
        oa,
        16,
        16,
        30,
        vec![Box::new(ScaleKernel::new(10.0))],
    ));
    let mut gw_b = GatewayPair::new("gwB", 3, 5, vec![acc_b], 4, 20, 4, 21, 2, 2, 1);
    gw_b.add_stream(StreamConfig::new(
        "sB",
        ib,
        ob,
        8,
        8,
        30,
        vec![Box::new(ScaleKernel::new(100.0))],
    ));
    let a = sys.add_gateway(gw_a);
    let b = sys.add_gateway(gw_b);
    for k in 0..1024 {
        sys.fifos[ia.0].try_push((k as f64, 0.0), 0);
        sys.fifos[ib.0].try_push((k as f64, 0.0), 0);
    }
    (sys, [a, b])
}

#[test]
fn concurrent_gateways_do_not_cross_talk() {
    let (mut sys, [a, b]) = build();
    sys.run(60_000);
    assert!(sys.gateways[a].stream(0).blocks_done >= 10);
    assert!(sys.gateways[b].stream(0).blocks_done >= 10);
    // Output FIFOs hold each stream's own scaled values, in order.
    let oa = sys.gateways[a].stream(0).output;
    let ob = sys.gateways[b].stream(0).output;
    for k in 0..64 {
        assert_eq!(
            sys.fifos[oa.0].pop(),
            Some((k as f64 * 10.0, 0.0)),
            "gwA token {k}"
        );
    }
    for k in 0..64 {
        assert_eq!(
            sys.fifos[ob.0].pop(),
            Some((k as f64 * 100.0, 0.0)),
            "gwB token {k}"
        );
    }
}

#[test]
fn concurrent_throughput_close_to_isolated() {
    // Run gwA alone, then with gwB active: ring capacity is ample, so gwA's
    // block rate must be nearly unchanged (guaranteed-throughput claim).
    let (mut both, [a, _b]) = build();
    both.run(60_000);
    let blocks_both = both.gateways[a].stream(0).blocks_done;

    let mut alone = {
        let (mut sys, _) = build();
        // Starve gateway B by draining its input FIFO.
        let ib = sys.gateways[1].stream(0).input;
        while sys.fifos[ib.0].pop().is_some() {}
        sys
    };
    alone.run(60_000);
    let blocks_alone = alone.gateways[a].stream(0).blocks_done;

    assert!(
        blocks_both * 10 >= blocks_alone * 9,
        "sharing the ring cost more than 10%: {blocks_both} vs {blocks_alone}"
    );
}

/// Two gateway pairs sharing ONE physical accelerator (4 logical uses on
/// one chain would look the same — the mutex is per chain, not per
/// stream). Ring stations: 0 entryA, 1 shared accel, 2 exitA, 3 entryB,
/// 4 exitB.
fn build_shared(mode: StepMode) -> (System, [usize; 2]) {
    let mut sys = System::new(5);
    sys.step_mode = mode;
    let ia = sys.add_fifo(CFifo::new("ia", 4096));
    let oa = sys.add_fifo(CFifo::new("oa", 1 << 20));
    let ib = sys.add_fifo(CFifo::new("ib", 4096));
    let ob = sys.add_fifo(CFifo::new("ob", 1 << 20));
    // Initial wiring matches gwA; the first claim retargets it anyway.
    let acc = sys.add_accel(AcceleratorTile::new("acc", 1, 0, 10, 2, 11, 2, 1));
    let mut gw_a = GatewayPair::new("gwA", 0, 2, vec![acc], 1, 10, 1, 11, 2, 2, 1);
    gw_a.shared_chain = true;
    gw_a.add_stream(StreamConfig::new(
        "sA",
        ia,
        oa,
        16,
        16,
        30,
        vec![Box::new(ScaleKernel::new(10.0))],
    ));
    let mut gw_b = GatewayPair::new("gwB", 3, 4, vec![acc], 1, 20, 1, 21, 2, 2, 1);
    gw_b.shared_chain = true;
    gw_b.add_stream(StreamConfig::new(
        "sB",
        ib,
        ob,
        8,
        8,
        30,
        vec![Box::new(ScaleKernel::new(100.0))],
    ));
    let a = sys.add_gateway(gw_a);
    let b = sys.add_gateway(gw_b);
    for k in 0..1024 {
        sys.fifos[ia.0].try_push((k as f64, 0.0), 0);
        sys.fifos[ib.0].try_push((k as f64, 0.0), 0);
    }
    (sys, [a, b])
}

#[test]
fn shared_chain_serialises_blocks_and_preserves_values() {
    let (mut sys, [a, b]) = build_shared(StepMode::Exhaustive);
    sys.run(60_000);
    let done_a = sys.gateways[a].stream(0).blocks_done;
    let done_b = sys.gateways[b].stream(0).blocks_done;
    assert!(done_a >= 10, "gwA starved: {done_a} blocks");
    assert!(done_b >= 10, "gwB starved: {done_b} blocks");

    // Chain ownership intervals (claim..release) must never overlap:
    // the kernel-presence mutex serialises the two pairs.
    for x in &sys.gateways[a].blocks {
        for y in &sys.gateways[b].blocks {
            assert!(
                x.drain_end <= y.start || y.drain_end <= x.start,
                "chain ownership overlap: gwA [{}, {}] vs gwB [{}, {}]",
                x.start,
                x.drain_end,
                y.start,
                y.drain_end
            );
        }
    }

    // Per-stream kernel contexts followed their streams across claims.
    let oa = sys.gateways[a].stream(0).output;
    let ob = sys.gateways[b].stream(0).output;
    for k in 0..64 {
        assert_eq!(
            sys.fifos[oa.0].pop(),
            Some((k as f64 * 10.0, 0.0)),
            "gwA token {k}"
        );
        assert_eq!(
            sys.fifos[ob.0].pop(),
            Some((k as f64 * 100.0, 0.0)),
            "gwB token {k}"
        );
    }
}

#[test]
fn shared_chain_identical_across_engines() {
    let (mut ex, _) = build_shared(StepMode::Exhaustive);
    let (mut ev, _) = build_shared(StepMode::EventDriven);
    ex.run(60_000);
    ev.run(60_000);
    for g in 0..2 {
        assert_eq!(
            ex.gateways[g].blocks.len(),
            ev.gateways[g].blocks.len(),
            "gateway {g}: block counts differ between engines"
        );
        for (x, y) in ex.gateways[g].blocks.iter().zip(&ev.gateways[g].blocks) {
            assert_eq!(
                (x.start, x.reconfig_end, x.stream_end, x.drain_end),
                (y.start, y.reconfig_end, y.stream_end, y.drain_end),
                "gateway {g}: block schedule diverged"
            );
        }
        let out = ex.gateways[g].stream(0).output;
        assert_eq!(
            ex.fifos[out.0].len(),
            ev.fifos[out.0].len(),
            "gateway {g}: output FIFO lengths differ"
        );
    }
    assert!(
        ev.engine_stats.skipped_cycles > 0,
        "event engine never skipped on the shared-chain workload"
    );
}

#[test]
fn shared_chain_starved_owner_does_not_hold_the_chain() {
    // gwB has no input: gwA must keep the chain to itself with no
    // inter-block interference from the idle pair.
    let (mut sys, [a, b]) = build_shared(StepMode::EventDriven);
    let ib = sys.gateways[b].stream(0).input;
    while sys.fifos[ib.0].pop().is_some() {}
    sys.run(60_000);
    assert_eq!(sys.gateways[b].stream(0).blocks_done, 0);
    assert!(sys.gateways[a].stream(0).blocks_done >= 20);
}
