//! Regression test for the §V-G check-for-space admission test (Fig. 9).
//!
//! Two streams share one accelerator chain. Stream 1's consumer FIFO is
//! smaller than its block and never drained. With the exit-gateway's
//! check-for-space test DISABLED, stream 1's block wedges in the shared
//! hardware FIFO and head-of-line-blocks stream 0 — the tracer must show
//! the stall cycles. With the check ENABLED the block is simply never
//! admitted and the stalls vanish.

use streamgate_platform::{
    AcceleratorTile, CFifo, GatewayPair, PassthroughKernel, StallCause, StreamConfig, System,
};

/// Builds and runs the shared-FIFO harness; returns the system after 20k
/// cycles. `check_for_space = false` reproduces the Fig. 9 failure mode.
fn run(check_for_space: bool) -> System {
    let mut sys = System::new(4);
    sys.enable_tracing(0);
    let i0 = sys.add_fifo(CFifo::new("i0", 4096));
    let o0 = sys.add_fifo(CFifo::new("o0", 1 << 16));
    let i1 = sys.add_fifo(CFifo::new("i1", 4096));
    let o1 = sys.add_fifo(CFifo::new("o1-slow", 4)); // < η_out, never drained
    let acc = sys.add_accel(AcceleratorTile::new("acc", 1, 0, 10, 2, 11, 2, 1));
    let mut gw = GatewayPair::new("gw", 0, 2, vec![acc], 1, 10, 1, 11, 2, 2, 1);
    gw.check_for_space = check_for_space;
    for (name, i, o) in [("s0", i0, o0), ("s1", i1, o1)] {
        gw.add_stream(StreamConfig::new(
            name,
            i,
            o,
            16,
            16,
            10,
            vec![Box::new(PassthroughKernel)],
        ));
    }
    sys.add_gateway(gw);
    for k in 0..4096 {
        sys.fifos[i0.0].try_push((k as f64, 0.0), 0);
        sys.fifos[i1.0].try_push((k as f64, 0.0), 0);
    }
    sys.run(20_000);
    sys
}

fn blocks_of(sys: &System, stream: usize) -> usize {
    sys.gateways[0]
        .blocks
        .iter()
        .filter(|b| b.stream == stream)
        .count()
}

#[test]
fn disabling_space_check_creates_head_of_line_stalls() {
    let sys = run(false);
    let stalls = sys.tracer.stall_cycles(0, StallCause::ExitFifoFull);
    assert!(
        stalls > 1000,
        "with the check disabled the exit gateway must spin on the full \
         consumer FIFO for most of the run (got {stalls} stall cycles)"
    );
    // Stream 1's wedged block starves stream 0: it completes (at most) the
    // one block that was already in flight.
    assert!(
        blocks_of(&sys, 0) <= 1,
        "stream 0 should be head-of-line blocked, got {} blocks",
        blocks_of(&sys, 0)
    );
}

#[test]
fn space_check_removes_head_of_line_stalls() {
    let sys = run(true);
    assert_eq!(
        sys.tracer.stall_cycles(0, StallCause::ExitFifoFull),
        0,
        "with the check enabled, blocks without output space are never \
         admitted, so the exit gateway never stalls"
    );
    // Stream 1 is (correctly) never admitted; stream 0 runs freely.
    assert_eq!(blocks_of(&sys, 1), 0);
    assert!(
        blocks_of(&sys, 0) > 100,
        "stream 0 must stream freely, got {} blocks",
        blocks_of(&sys, 0)
    );
}

#[test]
fn stall_breakdown_shows_backpressure_propagation() {
    // The breakdown is what makes the tracer diagnostic, not just a flag:
    // the root cause is the full consumer FIFO (ExitFifoFull), and because
    // the exit stops popping, NI credits stop returning and the entry DMA
    // of the wedged block stalls too (DmaNoCredit) — back-pressure reaches
    // across the whole accelerator chain.
    let sys = run(false);
    assert!(sys.tracer.stall_cycles(0, StallCause::ExitFifoFull) > 0);
    assert!(sys.tracer.stall_cycles(0, StallCause::DmaNoCredit) > 0);
    // CheckForSpace stalls are by definition zero when the check is off.
    assert_eq!(sys.tracer.stall_cycles(0, StallCause::CheckForSpace), 0);
}
