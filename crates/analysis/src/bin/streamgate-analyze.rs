//! `streamgate-analyze` — run the static deployment analyzer from the
//! command line.
//!
//! ```text
//! streamgate-analyze [--json] [--profile FILE] [--spec FILE | PRESET]
//!
//! PRESET: pal (default) | pal2 | fig6 | fig9-safe | fig9-broken
//! ```
//!
//! Prints the analysis report as text (or machine-readable JSON with
//! `--json`) and exits non-zero when any rule reports an Error. With
//! `--profile`, a measured `RunProfile` JSON (written by the simulator
//! binaries' own `--profile` flag) feeds measured per-hop burstiness back
//! into rule A7 and measured arrival jitter into rule A10.

use std::process::ExitCode;
use streamgate_analysis::{analyze_profiled, parse_profile, AnalysisOptions, DeploySpec};

const USAGE: &str = "usage: streamgate-analyze [--json] [--profile FILE] [--spec FILE | PRESET]\n\
                     presets: pal (default), pal2, fig6, fig9-safe, fig9-broken";

fn main() -> ExitCode {
    let mut json = false;
    let mut spec_file: Option<String> = None;
    let mut preset: Option<String> = None;
    let mut profile_file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--spec" => match args.next() {
                Some(f) => spec_file = Some(f),
                None => {
                    eprintln!("--spec needs a file argument\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--profile" => match args.next() {
                Some(f) => profile_file = Some(f),
                None => {
                    eprintln!("--profile needs a file argument\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && preset.is_none() => {
                preset = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let spec = if let Some(file) = spec_file {
        let text = match std::fs::read_to_string(&file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {file}: {e}");
                return ExitCode::from(2);
            }
        };
        match DeploySpec::from_json_text(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot parse {file}: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        match preset.as_deref().unwrap_or("pal") {
            "pal" => DeploySpec::pal_scaled(),
            "pal2" => DeploySpec::pal2(),
            "fig6" => DeploySpec::fig6(),
            "fig9-safe" => DeploySpec::fig9(true),
            "fig9-broken" => DeploySpec::fig9(false),
            other => {
                eprintln!("unknown preset `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    };

    let profile = match profile_file {
        Some(file) => {
            let text = match std::fs::read_to_string(&file) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {file}: {e}");
                    return ExitCode::from(2);
                }
            };
            match parse_profile(&text) {
                Ok(p) => Some(p),
                Err(e) => {
                    eprintln!("cannot parse profile {file}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };

    let report = analyze_profiled(&spec, &AnalysisOptions::default(), profile.as_ref());
    if json {
        println!("{}", report.to_json_text());
    } else {
        print!("{}", report.render_text());
    }
    if report.is_accepted() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
