//! `streamgate-analyze` — run the static deployment analyzer from the
//! command line.
//!
//! ```text
//! streamgate-analyze [--json] [--profile FILE] [--delta FILE]
//!                    [--timing FILE] [--spec FILE | PRESET]
//!
//! PRESET: pal (default) | pal2 | fig6 | fig9-safe | fig9-broken
//! ```
//!
//! Prints the analysis report as text (or machine-readable JSON with
//! `--json`). With `--profile`, a measured `RunProfile` JSON (written by
//! the simulator binaries' own `--profile` flag) feeds measured per-hop
//! burstiness back into rule A7 and measured arrival jitter into rule A10.
//!
//! With `--delta`, the spec is the *baseline* of an incremental
//! admission-control session: the file is a JSON churn script
//! (`{"deltas": [{"op": "add"|"remove"|"retune"|"switch", "gateway": N,
//! "stream": ...}]}`; `switch` additionally names a declared `"mode"`
//! and is checked against the spec's allowed transition edges) whose
//! requests are evaluated in order through the
//! O(affected-gateways) incremental analyzer; admitted deltas commit,
//! rejected ones leave the committed deployment untouched. One verdict
//! line prints per delta, then the final committed deployment's report.
//! `--timing FILE` additionally writes a JSON comparison of incremental
//! vs full re-analysis wall time per delta.
//!
//! # Exit codes
//!
//! * `0` — the (final) deployment is **accepted**: no rule reported an
//!   Error. Warnings and infos alone never fail the run.
//! * `2` — the deployment is **rejected** (at least one Error
//!   diagnostic), or the command line / input files were unusable.
//!
//! Exit code 1 is deliberately unused: it is what a crash (panic) yields,
//! so automation can tell "analyzer said no" (2) from "analyzer broke" (1).

use std::process::ExitCode;
use std::time::Instant;
use streamgate_analysis::{
    analyze_profiled, analyze_with, parse_delta_script, parse_profile, render_postmortem,
    AnalysisOptions, AnalysisState, DeploySpec,
};

const USAGE: &str = "usage: streamgate-analyze [--json] [--profile FILE] [--postmortem FILE] [--delta FILE] [--timing FILE] [--spec FILE | PRESET]\n\
                     presets: pal (default), pal2, fig6, fig9-safe, fig9-broken\n\
                     --postmortem renders a flight-recorder postmortem.json against the spec's bounds\n\
                     exit codes: 0 = accepted (warnings allowed), 2 = rejected or usage error";

fn main() -> ExitCode {
    let mut json = false;
    let mut spec_file: Option<String> = None;
    let mut preset: Option<String> = None;
    let mut profile_file: Option<String> = None;
    let mut postmortem_file: Option<String> = None;
    let mut delta_file: Option<String> = None;
    let mut timing_file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--spec" => match args.next() {
                Some(f) => spec_file = Some(f),
                None => {
                    eprintln!("--spec needs a file argument\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--profile" => match args.next() {
                Some(f) => profile_file = Some(f),
                None => {
                    eprintln!("--profile needs a file argument\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--postmortem" => match args.next() {
                Some(f) => postmortem_file = Some(f),
                None => {
                    eprintln!("--postmortem needs a file argument\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--delta" => match args.next() {
                Some(f) => delta_file = Some(f),
                None => {
                    eprintln!("--delta needs a file argument\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--timing" => match args.next() {
                Some(f) => timing_file = Some(f),
                None => {
                    eprintln!("--timing needs a file argument\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && preset.is_none() => {
                preset = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let spec = if let Some(file) = spec_file {
        let text = match std::fs::read_to_string(&file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {file}: {e}");
                return ExitCode::from(2);
            }
        };
        match DeploySpec::from_json_text(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot parse {file}: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        match preset.as_deref().unwrap_or("pal") {
            "pal" => DeploySpec::pal_scaled(),
            "pal2" => DeploySpec::pal2(),
            "fig6" => DeploySpec::fig6(),
            "fig9-safe" => DeploySpec::fig9(true),
            "fig9-broken" => DeploySpec::fig9(false),
            other => {
                eprintln!("unknown preset `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    };

    if let Some(file) = delta_file {
        return run_deltas(spec, &file, timing_file.as_deref(), json);
    }

    if let Some(file) = postmortem_file {
        return run_postmortem(spec, &file);
    }

    let profile = match profile_file {
        Some(file) => {
            let text = match std::fs::read_to_string(&file) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {file}: {e}");
                    return ExitCode::from(2);
                }
            };
            match parse_profile(&text) {
                Ok(p) => Some(p),
                Err(e) => {
                    eprintln!("cannot parse profile {file}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };

    let report = analyze_profiled(&spec, &AnalysisOptions::default(), profile.as_ref());
    if json {
        println!("{}", report.to_json_text());
    } else {
        print!("{}", report.render_text());
    }
    if report.is_accepted() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

/// Render a flight-recorder postmortem dump against the spec's predicted
/// bounds: the violation context, the blame breakdown of the violating
/// block, and each component's analytic ceiling. Exit 0 on a successful
/// render (the dump documents the failure; the render itself succeeded),
/// 2 on unusable input.
fn run_postmortem(spec: DeploySpec, file: &str) -> ExitCode {
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let pm = match streamgate_analysis::json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("cannot parse postmortem {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let report = analyze_with(&spec, &AnalysisOptions::default());
    match render_postmortem(&spec, &report, &pm) {
        Ok(rendered) => {
            print!("{rendered}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot render postmortem {file}: {e}");
            ExitCode::from(2)
        }
    }
}

/// Replay a churn script through the incremental analyzer. Prints one
/// verdict line per delta and the final committed report; with `timing`,
/// writes an incremental-vs-full wall-time comparison JSON.
fn run_deltas(spec: DeploySpec, file: &str, timing: Option<&str>, json: bool) -> ExitCode {
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let deltas = match parse_delta_script(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot parse delta script {file}: {e}");
            return ExitCode::from(2);
        }
    };

    let opts = AnalysisOptions::default();
    let mut state = AnalysisState::new(spec, opts);
    let mut rows = Vec::new();
    for (i, delta) in deltas.iter().enumerate() {
        let t0 = Instant::now();
        let verdict = match state.apply(delta) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("delta {i} ({}): {e}", delta.describe());
                return ExitCode::from(2);
            }
        };
        let inc_ns = t0.elapsed().as_nanos();
        let decision = if verdict.is_admitted() {
            "admit"
        } else {
            "reject"
        };
        println!(
            "delta {i}: {} -> {decision} ({} error(s), {} warning(s))",
            delta.describe(),
            verdict.report().error_count(),
            verdict
                .report()
                .with_severity(streamgate_analysis::Severity::Warning)
                .count(),
        );
        if timing.is_some() {
            // Time a fresh full analysis of the same committed deployment
            // for the speedup artifact. Only measured when asked: it is
            // exactly the cost the incremental path exists to avoid.
            let t1 = Instant::now();
            let _full = analyze_with(state.spec(), &opts);
            let full_ns = t1.elapsed().as_nanos();
            rows.push(format!(
                "    {{\"delta\": {i}, \"op\": \"{}\", \"decision\": \"{decision}\", \
                 \"incremental_ns\": {inc_ns}, \"full_ns\": {full_ns}, \"speedup\": {:.2}}}",
                delta.describe(),
                full_ns as f64 / inc_ns.max(1) as f64,
            ));
        }
    }

    if let Some(out) = timing {
        let body = format!("{{\n  \"deltas\": [\n{}\n  ]\n}}\n", rows.join(",\n"));
        if let Err(e) = std::fs::write(out, body) {
            eprintln!("cannot write timing file {out}: {e}");
            return ExitCode::from(2);
        }
    }

    let report = state.report();
    if json {
        println!("{}", report.to_json_text());
    } else {
        print!("{}", report.render_text());
    }
    if report.is_accepted() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
