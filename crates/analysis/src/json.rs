//! Minimal JSON tree, emitter and parser.
//!
//! The build environment is fully offline (no serde); diagnostics still have
//! to round-trip through a machine-readable format, so this module provides
//! the small subset of JSON the analyzer needs: objects, arrays, strings,
//! booleans, null and numbers (integers exactly, floats via `f64`).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed or constructed JSON value.
///
/// Object keys are kept in a [`BTreeMap`] so emission is deterministic —
/// equal values always serialise to byte-identical text, which is what the
/// round-trip tests rely on.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (JSON numbers without fraction/exponent parse to this).
    Int(i128),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with deterministically ordered keys.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The integer value, if this is an integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The unsigned integer value, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_int().and_then(|v| u64::try_from(v).ok())
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Serialise to compact JSON text.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                // Emit floats so they re-parse as floats (keep a dot).
                let t = format!("{v}");
                out.push_str(&t);
                if !t.contains('.') && !t.contains('e') && !t.contains("inf") && !t.contains("NaN")
                {
                    out.push_str(".0");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Parse JSON text into a [`Json`] tree.
///
/// Accepts the standard grammar (with `\uXXXX` escapes, including surrogate
/// pairs); returns a message with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| format!("unterminated string at byte {}", self.pos))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self
                        .peek()
                        .ok_or_else(|| format!("bad escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| format!("bad codepoint at {}", self.pos))?,
                            );
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let s = std::str::from_utf8(
                        self.bytes
                            .get(start..end)
                            .ok_or_else(|| format!("bad utf-8 at byte {start}"))?,
                    )
                    .map_err(|_| format!("bad utf-8 at byte {start}"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
        let s = std::str::from_utf8(s).map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number {text:?}"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| format!("bad number {text:?}"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basics() {
        let v = Json::obj(vec![
            ("a", Json::Int(-3)),
            ("b", Json::Array(vec![Json::Bool(true), Json::Null])),
            ("c", Json::Str("x\"y\\z\n".into())),
            ("d", Json::Float(1.5)),
        ]);
        let text = v.to_text();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn deterministic_emission() {
        let v1 = Json::obj(vec![("b", Json::Int(1)), ("a", Json::Int(2))]);
        let v2 = Json::obj(vec![("a", Json::Int(2)), ("b", Json::Int(1))]);
        assert_eq!(v1.to_text(), v2.to_text());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"k\" : [ 1 , 2.25 , \"\\u00e9\\n\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_array().unwrap(),
            &[Json::Int(1), Json::Float(2.25), Json::Str("é\n".into())]
        );
    }

    #[test]
    fn floats_reparse_as_floats() {
        let v = Json::Float(2.0);
        assert_eq!(parse(&v.to_text()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"abc").is_err());
    }
}
