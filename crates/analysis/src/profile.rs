//! Measured-profile feedback into the static analyzer.
//!
//! `streamgate-core`'s [`RunProfile`] records what a profiled simulation
//! run *actually did* — empirical per-hop arrival curves, per-stream τ
//! distributions, input burstiness, round samples. This module closes the
//! loop:
//!
//! * [`parse_profile`] reads the profile's deterministic JSON back;
//! * [`RingEnvelope`] computes the analyzer's *predicted* per-hop arrival
//!   curve from the spec alone — the curve every measured hop curve must
//!   stay under if rule A7's reasoning is sound;
//! * [`analyze_profiled`] runs the normal analysis and then folds the
//!   measurements in: measured hop curves escaping the predicted envelope
//!   (or a physically impossible > 1 flit/cycle sustained hop load) are
//!   **A7 Errors**; measured input burstiness refines the A10 latency
//!   picture (Info/Warning — measurements of one run never *prove* a
//!   bound, so they are never allowed to accept a deployment the static
//!   rules rejected, and a measured-arrival refinement tightening a bound
//!   is advisory);
//! * [`monitor_for`] arms a `streamgate-core` online [`Monitor`] with the
//!   analyzer's τ̂/γ bounds plus the measurement margins
//!   ([`tau_margin`]/[`multi_tau_margin`]/[`round_margin`]) that separate
//!   the paper's model quantities from simulator-observable timestamps.
//!
//! The differential tests run this over every accepted random
//! multi-gateway topology on both engines: predicted curves must dominate
//! measured ones everywhere, and the monitor must stay silent.

use crate::diag::{Diagnostic, Location, Report, RuleId, Severity};
use crate::json::Json;
use crate::rules::{analyze_with, AnalysisOptions};
use crate::spec::DeploySpec;
use streamgate_core::monitor::{Monitor, MonitorConfig};
use streamgate_core::profile::{
    ArrivalProfile, EmpiricalCurve, FifoProfile, GatewayProfile, HopProfile, RunProfile,
    StallProfile, StreamProfile,
};
use streamgate_platform::System;

// ---------------------------------------------------------------------------
// Measurement margins (promoted from the differential-test harness so the
// analyzer, the online monitor and the tests all use one calibration).
// ---------------------------------------------------------------------------

/// Per-block measurement margin for a single-gateway deployment: Eq. 2's
/// `(η+2)·c0` models the paper's three-stage pipeline (entry, one
/// accelerator, exit); a k-stage chain fills `k−1` further stages, and the
/// ring adds constant per-block transport (hops + NI handshakes),
/// independent of η.
pub fn tau_margin(spec: &DeploySpec) -> u64 {
    let k = spec.chain.len() as u64;
    k.saturating_sub(1) * spec.c0() + 16 + 8 * k
}

/// Per-block measurement margin for one pair of a multi-gateway system:
/// the single-gateway margin shape on the view's chain, plus the longer
/// ring (every pair's entry/exit sits on the same loop).
pub fn multi_tau_margin(spec: &DeploySpec, view_chain_len: u64, c0: u64) -> u64 {
    let ring = 2 * spec.gateways.len() as u64
        + spec
            .gateways
            .iter()
            .map(|g| g.chain.len() as u64)
            .sum::<u64>();
    view_chain_len.saturating_sub(1) * c0 + 16 + 8 * view_chain_len + 2 * ring
}

/// Round measurement margin: every block of the round carries the
/// per-block margin.
pub fn round_margin(spec: &DeploySpec) -> u64 {
    tau_margin(spec) * spec.streams.len() as u64 + 16
}

// ---------------------------------------------------------------------------
// Profile JSON parsing.
// ---------------------------------------------------------------------------

fn req<'a>(v: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("{ctx}: missing `{key}`"))
}

fn req_u64(v: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    req(v, key, ctx)?
        .as_u64()
        .ok_or_else(|| format!("{ctx}: `{key}` is not an unsigned integer"))
}

fn req_usize(v: &Json, key: &str, ctx: &str) -> Result<usize, String> {
    Ok(req_u64(v, key, ctx)? as usize)
}

fn req_str(v: &Json, key: &str, ctx: &str) -> Result<String, String> {
    Ok(req(v, key, ctx)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: `{key}` is not a string"))?
        .to_string())
}

fn u64_list(v: &Json, key: &str, ctx: &str) -> Result<Vec<u64>, String> {
    req(v, key, ctx)?
        .as_array()
        .ok_or_else(|| format!("{ctx}: `{key}` is not an array"))?
        .iter()
        .map(|x| {
            x.as_u64()
                .ok_or_else(|| format!("{ctx}: `{key}` holds a non-integer"))
        })
        .collect()
}

/// Curves share the profile-wide window list and serialise only their
/// max/min count arrays.
fn parse_curve(v: &Json, windows: &[u64], ctx: &str) -> Result<EmpiricalCurve, String> {
    let max_count = u64_list(v, "max", ctx)?;
    let min_count = u64_list(v, "min", ctx)?;
    if max_count.len() != windows.len() || min_count.len() != windows.len() {
        return Err(format!(
            "{ctx}: curve length does not match the window list"
        ));
    }
    Ok(EmpiricalCurve {
        windows: windows.to_vec(),
        max_count,
        min_count,
    })
}

fn parse_hops(v: &Json, key: &str, windows: &[u64]) -> Result<Vec<HopProfile>, String> {
    req(v, key, "profile")?
        .as_array()
        .ok_or_else(|| format!("profile: `{key}` is not an array"))?
        .iter()
        .map(|h| {
            Ok(HopProfile {
                hop: req_usize(h, "hop", key)?,
                flits: req_u64(h, "flits", key)?,
                curve: parse_curve(h, windows, key)?,
            })
        })
        .collect()
}

/// Parse a [`RunProfile`] from the deterministic JSON
/// `streamgate_core::profile::RunProfile::to_json_text` emits.
pub fn parse_profile(text: &str) -> Result<RunProfile, String> {
    let v = crate::json::parse(text)?;
    // Accept-or-warn on the artifact schema version: cross-PR CI compares
    // artifacts from adjacent revisions, so a version skew must not make
    // the comparison impossible — it just stops being authoritative.
    match v.get("schema_version").and_then(Json::as_u64) {
        None => eprintln!(
            "warning: profile carries no schema_version (pre-v{} artifact); \
             parsing best-effort",
            streamgate_core::profile::SCHEMA_VERSION
        ),
        Some(sv) if sv != streamgate_core::profile::SCHEMA_VERSION => eprintln!(
            "warning: profile schema_version {sv} != supported {}; parsing best-effort",
            streamgate_core::profile::SCHEMA_VERSION
        ),
        Some(_) => {}
    }
    let windows = u64_list(&v, "windows", "profile")?;
    let streams = req(&v, "streams", "profile")?
        .as_array()
        .ok_or("profile: `streams` is not an array")?
        .iter()
        .map(|s| {
            let arrival = match req(s, "arrival", "stream")? {
                Json::Null => None,
                a => Some(ArrivalProfile {
                    samples: req_u64(a, "samples", "arrival")?,
                    max_fill: req_usize(a, "max_fill", "arrival")?,
                    curve: parse_curve(a, &windows, "arrival")?,
                }),
            };
            Ok(StreamProfile {
                gateway: req_usize(s, "gateway", "stream")?,
                stream: req_usize(s, "stream", "stream")?,
                gateway_name: req_str(s, "gateway_name", "stream")?,
                name: req_str(s, "name", "stream")?,
                blocks: req_u64(s, "blocks", "stream")?,
                tau_min: req_u64(s, "tau_min", "stream")?,
                tau_max: req_u64(s, "tau_max", "stream")?,
                tau_sum: req_u64(s, "tau_sum", "stream")?,
                tau_hist: u64_list(s, "tau_hist", "stream")?,
                completions: parse_curve(req(s, "completions", "stream")?, &windows, "stream")?,
                arrival,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let gateways = req(&v, "gateways", "profile")?
        .as_array()
        .ok_or("profile: `gateways` is not an array")?
        .iter()
        .map(|g| {
            let stalls = req(g, "stalls", "gateway")?
                .as_array()
                .ok_or("gateway: `stalls` is not an array")?
                .iter()
                .map(|st| {
                    Ok(StallProfile {
                        cause: req_str(st, "cause", "stall")?,
                        windows: req_u64(st, "windows", "stall")?,
                        cycles: req_u64(st, "cycles", "stall")?,
                        hist: u64_list(st, "hist", "stall")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(GatewayProfile {
                gateway: req_usize(g, "gateway", "gateway")?,
                name: req_str(g, "name", "gateway")?,
                round_count: req_u64(g, "round_count", "gateway")?,
                round_max: req_u64(g, "round_max", "gateway")?,
                rounds: u64_list(g, "rounds", "gateway")?,
                stalls,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let fifos = req(&v, "fifos", "profile")?
        .as_array()
        .ok_or("profile: `fifos` is not an array")?
        .iter()
        .map(|f| {
            Ok(FifoProfile {
                index: req_usize(f, "index", "fifo")?,
                name: req_str(f, "name", "fifo")?,
                capacity: req_usize(f, "capacity", "fifo")?,
                high_water: req_usize(f, "high_water", "fifo")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(RunProfile {
        deployment: req_str(&v, "deployment", "profile")?,
        mode: req_str(&v, "mode", "profile")?,
        cycles: req_u64(&v, "cycles", "profile")?,
        ring_nodes: req_usize(&v, "ring_nodes", "profile")?,
        data_hops: parse_hops(&v, "data_hops", &windows)?,
        credit_hops: parse_hops(&v, "credit_hops", &windows)?,
        windows,
        streams,
        gateways,
        fifos,
    })
}

// ---------------------------------------------------------------------------
// The predicted per-hop arrival-curve envelope.
// ---------------------------------------------------------------------------

/// One chain segment's contribution to a hop it crosses: at most `flits`
/// flits per block burst, flits within a burst at least `pace` cycles
/// apart, block bursts spaced at least `spacing` cycles apart, plus a
/// window-independent `slack` (credit-ring initial stock).
#[derive(Clone, Copy, Debug)]
struct HopTerm {
    flits: u64,
    spacing: u64,
    pace: u64,
    slack: u64,
}

/// The analyzer-predicted arrival-curve envelope per ring hop, derived
/// from the spec alone (no measurements). Each hop collects one term per
/// chain *segment* crossing it, and each term models that segment's own
/// pacing rather than a per-gateway maximum:
///
/// * **flits per burst** — what the segment actually carries per block:
///   η_in on the entry segment, η_out on the last-accelerator→exit
///   segment, `max(η_in, η_out)` on interior segments (the decimation or
///   expansion stage is not pinned down by the spec);
/// * **intra-burst pace** — consecutive flits on a segment are at least
///   `pace` cycles apart: ε on the entry segment (the DMA is ε-paced),
///   `max(ρ, 1)` of the forwarding stage on later segments (a stage
///   consumes — and therefore forwards — at most once per `max(ρ, 1)`
///   cycles). Credit hops mirror one credit per data flit at the pace of
///   the *receiving* side: `max(ρ, 1)` of the consuming stage, `max(δ, 1)`
///   for the exit gateway's copies. A Δ-cycle window therefore sees at
///   most `(Δ + 2·nodes)/pace + 1` flits of one burst, the `2·nodes`
///   absorbing injection jitter from slot contention;
/// * **burst spacing** — block bursts are at least
///   `min_s (η_in − 1)·ε + min_s R_s` apart (blocks on one chain are
///   serial and reconfigure in between), so a Δ-window intersects at most
///   `⌊(Δ + 2·nodes)/spacing⌋ + 2` bursts;
/// * **slack** — credit terms add `ni_depth·(chain_len + 1)` for the
///   chain links' initial credit stock.
///
/// Every bound is additionally capped by the physical
/// one-flit-per-hop-per-cycle limit.
#[derive(Clone, Debug)]
pub struct RingEnvelope {
    /// Ring stations (hop indexing context).
    nodes: usize,
    data_terms: Vec<Vec<HopTerm>>,
    credit_terms: Vec<Vec<HopTerm>>,
}

impl RingEnvelope {
    /// Build the envelope for a spec's ring layout.
    pub fn of(spec: &DeploySpec) -> RingEnvelope {
        let layout = spec.ring_layout();
        let n = layout.nodes;
        let mut data_terms: Vec<Vec<HopTerm>> = vec![Vec::new(); n];
        let mut credit_terms: Vec<Vec<HopTerm>> = vec![Vec::new(); n];
        for v in spec.gateway_views() {
            if v.streams.is_empty() || v.chain.is_empty() {
                continue;
            }
            let eta_in = v.streams.iter().map(|s| s.eta_in).max().unwrap_or(0);
            let eta_out = v.streams.iter().map(|s| s.eta_out).max().unwrap_or(0);
            let spacing = (v
                .streams
                .iter()
                .map(|s| s.eta_in.saturating_sub(1) * spec.epsilon)
                .min()
                .unwrap_or(0)
                + v.streams.iter().map(|s| s.reconfig).min().unwrap_or(0))
            .max(1);
            let credit_slack = spec.ni_depth as u64 * (v.chain.len() as u64 + 1);
            let segs = layout.segments(v.index);
            let last = segs.len() - 1;
            for (k, &(src, dst)) in segs.iter().enumerate() {
                let flits = if k == 0 {
                    eta_in
                } else if k == last {
                    eta_out
                } else {
                    eta_in.max(eta_out)
                };
                let data_pace = if k == 0 {
                    spec.epsilon.max(1)
                } else {
                    v.chain[k - 1].rho.max(1)
                };
                let credit_pace = if k == last {
                    spec.delta.max(1)
                } else {
                    v.chain[k].rho.max(1)
                };
                for h in layout.data_hops(src, dst) {
                    data_terms[h].push(HopTerm {
                        flits,
                        spacing,
                        pace: data_pace,
                        slack: 0,
                    });
                }
                for h in layout.credit_hops(src, dst) {
                    credit_terms[h].push(HopTerm {
                        flits,
                        spacing,
                        pace: credit_pace,
                        slack: credit_slack,
                    });
                }
            }
        }
        RingEnvelope {
            nodes: n,
            data_terms,
            credit_terms,
        }
    }

    fn bound(&self, terms: &[HopTerm], delta: u64) -> u64 {
        let jitter = 2 * self.nodes as u64;
        let sum: u64 = terms
            .iter()
            .map(|t| {
                let bursts = (delta + jitter) / t.spacing + 2;
                let per_burst = t.flits.min((delta + jitter) / t.pace + 1);
                per_burst * bursts + t.slack
            })
            .sum();
        sum.min(delta)
    }

    /// Predicted max flits crossing data hop `hop` in any `delta`-cycle
    /// window (0 for hops no gateway path crosses — nothing may cross).
    pub fn data_bound(&self, hop: usize, delta: u64) -> u64 {
        self.data_terms.get(hop).map_or(0, |t| self.bound(t, delta))
    }

    /// Predicted max flits crossing credit hop `hop` in any `delta`-cycle
    /// window.
    pub fn credit_bound(&self, hop: usize, delta: u64) -> u64 {
        self.credit_terms
            .get(hop)
            .map_or(0, |t| self.bound(t, delta))
    }
}

// ---------------------------------------------------------------------------
// analyze_profiled: the normal rules plus measurement feedback.
// ---------------------------------------------------------------------------

/// Check every measured hop curve of `kind` against the envelope,
/// appending A7 diagnostics.
fn check_hop_domination(
    profile: &RunProfile,
    hops: &[HopProfile],
    kind: &str,
    bound: impl Fn(usize, u64) -> u64,
    diags: &mut Vec<Diagnostic>,
) -> (bool, u64, usize) {
    let mut dominated = true;
    let mut worst_flits = 0u64;
    let mut worst_hop = 0usize;
    for h in hops {
        if h.flits > worst_flits {
            worst_flits = h.flits;
            worst_hop = h.hop;
        }
        if h.flits > profile.cycles {
            dominated = false;
            diags.push(Diagnostic {
                rule: RuleId::A7RingContention,
                severity: Severity::Error,
                location: Location::Deployment,
                message: format!(
                    "measured {kind} hop {} carried {} flits in {} cycles — over the \
                     physical one-flit-per-cycle limit (profiler or model defect)",
                    h.hop, h.flits, profile.cycles
                ),
            });
        }
        for (i, &w) in h.curve.windows.iter().enumerate() {
            let measured = h.curve.max_count[i];
            let predicted = bound(h.hop, w);
            if measured > predicted {
                dominated = false;
                diags.push(Diagnostic {
                    rule: RuleId::A7RingContention,
                    severity: Severity::Error,
                    location: Location::Deployment,
                    message: format!(
                        "measured {kind} arrival curve escapes the predicted envelope at \
                         hop {}: {} flits observed in a {}-cycle window > predicted {}",
                        h.hop, measured, w, predicted
                    ),
                });
                break; // one witness per hop keeps the report readable
            }
        }
    }
    (dominated, worst_flits, worst_hop)
}

/// Fold a measured [`RunProfile`] into an analysis run.
///
/// Runs the normal [`analyze_with`] rules, then — when a profile is given —
/// appends measurement-feedback diagnostics:
///
/// * **A7**: when the profile's ring layout matches the spec's, every
///   measured per-hop arrival curve (data and credit) must be dominated by
///   the [`RingEnvelope`] prediction at every window size; an escape is an
///   Error (the static contention reasoning missed real traffic). A
///   layout mismatch (the profile came from a differently-shaped build,
///   e.g. the PAL deployment whose processor tiles share the ring)
///   degrades to an aggregate Info note.
/// * **A10**: measured input arrival curves refine the latency picture.
///   The analytic Fig. 7 fill time assumes arrivals at exactly μ; the
///   measured burst witness (the smallest window in which a whole block's
///   η_in samples actually arrived) bounds the *observed* fill, giving a
///   measured-informed end-to-end figure reported as Info — or a Warning
///   when the measured figure exceeds a declared latency budget the
///   analytic bound met (jittery arrivals eroding the margin).
///
/// Measurements never *remove* diagnostics: one run cannot prove a bound.
pub fn analyze_profiled(
    spec: &DeploySpec,
    opts: &AnalysisOptions,
    profile: Option<&RunProfile>,
) -> Report {
    let mut report = analyze_with(spec, opts);
    let Some(p) = profile else {
        return report;
    };
    let mut diags: Vec<Diagnostic> = Vec::new();
    let layout = spec.ring_layout();

    if p.ring_nodes == layout.nodes {
        let env = RingEnvelope::of(spec);
        let (d_ok, d_flits, d_hop) = check_hop_domination(
            p,
            &p.data_hops,
            "data",
            |h, w| env.data_bound(h, w),
            &mut diags,
        );
        let (c_ok, ..) = check_hop_domination(
            p,
            &p.credit_hops,
            "credit",
            |h, w| env.credit_bound(h, w),
            &mut diags,
        );
        if d_ok && c_ok {
            diags.push(Diagnostic {
                rule: RuleId::A7RingContention,
                severity: Severity::Info,
                location: Location::Deployment,
                message: format!(
                    "profile `{}` ({} mode, {} cycles): every measured data/credit hop \
                     curve is dominated by the predicted envelope across {} window sizes; \
                     busiest data hop {} carried {} flits",
                    p.deployment,
                    p.mode,
                    p.cycles,
                    p.windows.len(),
                    d_hop,
                    d_flits
                ),
            });
        }
    } else {
        let total: u64 = p.data_hops.iter().map(|h| h.flits).sum();
        diags.push(Diagnostic {
            rule: RuleId::A7RingContention,
            severity: Severity::Info,
            location: Location::Deployment,
            message: format!(
                "profile `{}` ring layout ({} stations) differs from the analyzed layout \
                 ({} stations) — hop-level feedback skipped; aggregate measured data \
                 traffic {} hop-crossings over {} cycles",
                p.deployment, p.ring_nodes, layout.nodes, total, p.cycles
            ),
        });
    }

    // A10: measured arrival jitter per stream, matched by (gateway, local
    // stream) indices with a name cross-check.
    let views = spec.gateway_views();
    let mut flat = 0usize;
    let mut flat_of = Vec::new(); // (gateway, stream) -> flat index
    for v in &views {
        for s in 0..v.streams.len() {
            flat_of.push(((v.index, s), flat));
            flat += 1;
        }
    }
    for sp in &p.streams {
        let Some(&(_, fi)) = flat_of.iter().find(|&&(k, _)| k == (sp.gateway, sp.stream)) else {
            continue;
        };
        let (Some(view), Some(bounds)) = (views.get(sp.gateway), report.bounds.get(fi)) else {
            continue;
        };
        let st = &view.streams[sp.stream];
        if st.name != sp.name {
            continue;
        }
        let Some(arr) = &sp.arrival else { continue };
        // The smallest measured window holding a whole input block.
        let witness = arr
            .curve
            .windows
            .iter()
            .zip(&arr.curve.max_count)
            .find(|&(_, &c)| c >= st.eta_in)
            .map(|(&w, _)| w);
        let gamma_g = bounds.tau_hat + bounds.omega_hat;
        let loc = Location::Stream {
            index: fi,
            name: st.name.clone(),
        };
        match witness {
            Some(w) => {
                let measured_upper = w + gamma_g;
                let (severity, verdict) = match st.max_latency {
                    Some(budget) if measured_upper > budget => (
                        Severity::Warning,
                        format!("exceeds the declared budget {budget}"),
                    ),
                    Some(budget) => (
                        Severity::Info,
                        format!("within the declared budget {budget}"),
                    ),
                    None => (Severity::Info, "no budget declared".to_string()),
                };
                diags.push(Diagnostic {
                    rule: RuleId::A10EndToEndLatency,
                    severity,
                    location: loc,
                    message: format!(
                        "measured arrivals fill a block (eta_in = {}) within {w} cycles; \
                         measured-informed end-to-end figure {w} + gamma {gamma_g} = \
                         {measured_upper} — {verdict} (measured tau in [{}, {}] over {} \
                         blocks vs tau_hat = {})",
                        st.eta_in, sp.tau_min, sp.tau_max, sp.blocks, bounds.tau_hat
                    ),
                });
            }
            None => {
                diags.push(Diagnostic {
                    rule: RuleId::A10EndToEndLatency,
                    severity: Severity::Info,
                    location: loc,
                    message: format!(
                        "measured arrivals never filled a whole block (eta_in = {}) in \
                         any window — {} samples arrived over the run; fill-time \
                         refinement not applicable",
                        st.eta_in, arr.samples
                    ),
                });
            }
        }
    }

    report.diagnostics.extend(diags);
    crate::diag::sort_diagnostics(&mut report.diagnostics);
    report
}

// ---------------------------------------------------------------------------
// Arming the online monitor with analyzer bounds.
// ---------------------------------------------------------------------------

/// Build an online [`Monitor`] for a system built from `spec`, armed with
/// the analyzer's per-stream τ̂ and per-gateway γ bounds widened by the
/// measurement margins (the spec's gateway indices must match the
/// system's, which [`DeploySpec::build_platform`] and
/// [`DeploySpec::build_multi_platform`] guarantee).
pub fn monitor_for(spec: &DeploySpec, report: &Report, system: &System) -> Monitor {
    Monitor::new(monitor_config_for(spec, report, system))
}

/// The [`MonitorConfig`] behind [`monitor_for`], exposed separately so a
/// running monitor can be *re-armed* ([`Monitor::rearm`]) with bounds from
/// an updated spec/report after an online admission changed the stream
/// population.
pub fn monitor_config_for(spec: &DeploySpec, report: &Report, system: &System) -> MonitorConfig {
    let mut cfg = MonitorConfig::from_system(system);
    let views = spec.gateway_views();
    let mut flat = 0usize;
    for v in &views {
        let margin = if spec.is_multi() {
            multi_tau_margin(spec, v.chain.len() as u64, v.c0())
        } else {
            tau_margin(spec)
        };
        let n = v.streams.len() as u64;
        let mut gamma_g = None;
        for (s, st) in v.streams.iter().enumerate() {
            if let Some(b) = report.bounds.get(flat) {
                if b.stream == st.name {
                    gamma_g = Some(b.tau_hat + b.omega_hat);
                    if let Some(sc) = cfg
                        .gateways
                        .get_mut(v.index)
                        .and_then(|g| g.streams.get_mut(s))
                    {
                        sc.tau_bound = Some(b.tau_hat + margin);
                    }
                }
            }
            flat += 1;
        }
        if let (Some(g), Some(gc)) = (gamma_g, cfg.gateways.get_mut(v.index)) {
            gc.round_bound = Some(g + margin * n + 16);
        }
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_caps_at_one_flit_per_cycle() {
        let spec = DeploySpec::fig6();
        let env = RingEnvelope::of(&spec);
        let layout = spec.ring_layout();
        for h in 0..layout.nodes {
            assert!(env.data_bound(h, 1) <= 1);
            assert!(env.data_bound(h, 4) <= 4);
            assert!(env.credit_bound(h, 1) <= 1);
        }
    }

    #[test]
    fn envelope_zero_on_uncrossed_hops() {
        // fig6: 3 stations (entry 0, accel 1, exit 2); data crosses hops 0
        // and 1 only, credits cross hops 2 and 1 only.
        let spec = DeploySpec::fig6();
        let env = RingEnvelope::of(&spec);
        assert!(env.data_bound(0, 1_000) > 0);
        assert!(env.data_bound(1, 1_000) > 0);
        assert_eq!(env.data_bound(2, 1_000), 0);
        assert_eq!(env.credit_bound(0, 1_000), 0);
        assert!(env.credit_bound(1, 1_000) > 0);
        assert!(env.credit_bound(2, 1_000) > 0);
    }

    #[test]
    fn envelope_pacing_tightens_mid_windows() {
        // pal-scaled: entry hop 0 is fed by the ε-paced DMA (ε = 15), so a
        // mid-size window must be bounded well below both the physical cap
        // and the block size — the old per-gateway-max model saturated at
        // the Δ cap here.
        let spec = DeploySpec::pal_scaled();
        assert!(spec.epsilon >= 8, "test premise: a coarse DMA pace");
        let env = RingEnvelope::of(&spec);
        let b = env.data_bound(0, 1_000);
        assert!(b > 0);
        assert!(
            b < 500,
            "ε-paced entry hop should admit ≪ Δ flits per window, got {b}"
        );
        // The exit segment carries η_out (8:1 decimated), so its hop's
        // per-burst budget is smaller than the entry segment's η_in.
        let layout = spec.ring_layout();
        let exit_hop = layout.chain_nodes[0][1]; // last accel → exit
        let big = 1 << 22;
        assert!(env.data_bound(exit_hop, big) < env.data_bound(0, big));
    }

    #[test]
    fn margins_positive_and_ring_aware() {
        let spec = DeploySpec::fig6();
        assert!(tau_margin(&spec) > 0);
        assert!(round_margin(&spec) > tau_margin(&spec));
        let multi = DeploySpec::pal2();
        let v0 = multi.gateway_views()[0].clone();
        let m = multi_tau_margin(&multi, v0.chain.len() as u64, v0.c0());
        assert!(m > tau_margin(&spec), "multi margin covers the longer ring");
    }

    #[test]
    fn analyze_profiled_without_profile_matches_plain() {
        let spec = DeploySpec::fig6();
        let opts = AnalysisOptions::default();
        let plain = analyze_with(&spec, &opts);
        let profiled = analyze_profiled(&spec, &opts, None);
        assert_eq!(plain, profiled);
    }
}
