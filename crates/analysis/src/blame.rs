//! Componentwise conformance: measured blame components vs analytic terms.
//!
//! `streamgate-core`'s [`BlameReport`] attributes every cycle of every
//! completed block's measured τ to one [`BlameCause`]. This module maps
//! each cause onto the analytic term of the A10 latency breakdown (and,
//! for transition phases, rule A12's `TransitionBound`) and checks
//! *measured ≤ predicted per component* — strictly stronger than the
//! aggregate `τ ≤ τ̂` check, because a regression that, say, doubles the
//! ring-transit cost while halving accelerator service would cancel out
//! of the aggregate yet still shows up here.
//!
//! Per-stream ceilings (`η` = `eta_in`, margins from
//! [`crate::profile::tau_margin`] / [`crate::profile::multi_tau_margin`]):
//!
//! | blame cause | ceiling | analytic term |
//! |---|---|---|
//! | `reconfig` | `R_s` | Eq. 2 reconfiguration window |
//! | `tdm-slot-wait` | 0 | A12 `align` (folded into transitions) |
//! | `dma-credit-wait` | sharing slack | `(η+2)·c0` minus the DMA floor |
//! | `dma-transfer` | `(η−1)·ε + 3` | unstalled entry-DMA ceiling |
//! | `head-of-line` | 0 with check-for-space, else slack | A5 / Fig. 9 |
//! | `ring-transit` | static path hop count `D` | A7 ring path |
//! | `accel-service` | sharing slack | `(η+2)·c0` service/queueing share |
//!
//! The *sharing slack* is `(τ̂ + margin) − ((η−1)·ε + 2)`: every block
//! spends at least `(η−1)·ε + 2` cycles on unstalled DMA streaming, so no
//! other single component can exceed what remains of the τ bound. This
//! stays sound when the engine charges no reconfiguration window (`R`
//! folds into the slack instead of being subtracted blindly).

use crate::diag::Report;
use crate::json::Json;
use crate::spec::DeploySpec;
use std::fmt::Write as _;
use streamgate_core::attribution::{BlameCause, BlameReport};

/// Predicted per-component ceilings for one stream, in the same
/// gateway-then-stream order as [`BlameReport::streams`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentCeilings {
    /// Gateway index.
    pub gateway: usize,
    /// Stream index within the gateway.
    pub stream: usize,
    /// Stream name (matched against the blame report).
    pub name: String,
    /// Ceiling per [`BlameCause::ALL`] entry.
    pub ceilings: [u64; 7],
    /// The stream's whole-block budget: `τ̂` plus the measurement margin
    /// — what the aggregate conformance check (and the monitor) compares
    /// measured τ against.
    pub tau_budget: u64,
}

impl ComponentCeilings {
    /// The ceiling of one cause.
    pub fn ceiling(&self, cause: BlameCause) -> u64 {
        self.ceilings[cause.index()]
    }
}

/// Compute every stream's predicted component ceilings from the spec and
/// its (accepted) analysis report. Panics if the report's bound list does
/// not cover the spec's streams — callers pass the report produced by
/// analyzing the same spec.
pub fn component_ceilings(spec: &DeploySpec, report: &Report) -> Vec<ComponentCeilings> {
    let views = spec.gateway_views();
    let layout = spec.ring_layout();
    let mut out = Vec::new();
    let mut gi = 0;
    for v in &views {
        let margin = if spec.is_multi() {
            crate::profile::multi_tau_margin(spec, v.chain.len() as u64, v.c0())
        } else {
            crate::profile::tau_margin(spec)
        };
        let ring_dist: u64 = layout
            .segments(v.index)
            .iter()
            .map(|&(src, dst)| layout.data_hops(src, dst).len() as u64)
            .sum();
        for (s, st) in v.streams.iter().enumerate() {
            let bound = &report.bounds[gi];
            assert_eq!(
                bound.stream, st.name,
                "report bounds out of step with the spec's stream order"
            );
            let eta = st.eta_in;
            let dma_floor = eta.saturating_sub(1) * spec.epsilon + 2;
            let slack = (bound.tau_hat + margin).saturating_sub(dma_floor);
            let mut ceilings = [0u64; 7];
            ceilings[BlameCause::Reconfig.index()] = st.reconfig;
            ceilings[BlameCause::TdmSlotWait.index()] = 0;
            ceilings[BlameCause::DmaCreditWait.index()] = slack;
            ceilings[BlameCause::DmaTransfer.index()] = dma_floor + 1;
            ceilings[BlameCause::HeadOfLine.index()] = if spec.check_for_space { 0 } else { slack };
            ceilings[BlameCause::RingTransit.index()] = ring_dist;
            ceilings[BlameCause::AccelService.index()] = slack;
            out.push(ComponentCeilings {
                gateway: v.index,
                stream: s,
                name: st.name.clone(),
                ceilings,
                tau_budget: bound.tau_hat + margin,
            });
            gi += 1;
        }
    }
    out
}

/// Check a measured [`BlameReport`] against the spec's predicted
/// per-component ceilings. Returns one human-readable failure line per
/// exceeded component; an empty vector means the run conforms
/// componentwise.
pub fn check_blame_conformance(
    spec: &DeploySpec,
    report: &Report,
    blame: &BlameReport,
) -> Vec<String> {
    let ceilings = component_ceilings(spec, report);
    let mut failures = Vec::new();
    if ceilings.len() != blame.streams.len() {
        failures.push(format!(
            "stream count mismatch: spec predicts {} streams, blame report has {}",
            ceilings.len(),
            blame.streams.len()
        ));
        return failures;
    }
    for (c, m) in ceilings.iter().zip(&blame.streams) {
        if c.name != m.name {
            failures.push(format!(
                "stream order mismatch: predicted `{}` vs measured `{}`",
                c.name, m.name
            ));
            continue;
        }
        for cause in BlameCause::ALL {
            let measured = m.maxima[cause.index()];
            let predicted = c.ceilings[cause.index()];
            if measured > predicted {
                failures.push(format!(
                    "stream `{}` (gateway {}): measured {} = {measured} cycles > \
                     predicted ceiling {predicted}",
                    m.name,
                    m.gateway,
                    cause.name()
                ));
            }
        }
    }
    failures
}

// ---------------------------------------------------------------------------
// Postmortem rendering for `streamgate-analyze --postmortem`.
// ---------------------------------------------------------------------------

fn j_u64(v: &Json, key: &str) -> Option<u64> {
    v.get(key).and_then(Json::as_u64)
}

fn j_str<'a>(v: &'a Json, key: &str) -> Option<&'a str> {
    v.get(key).and_then(Json::as_str)
}

/// Render a `postmortem.json` dump (written by a simulator binary's
/// flight recorder on a monitor violation or failed `run_until`) against
/// the spec's predicted bounds: which stream tripped, how far over budget
/// it went, and which blame component — with its analytic ceiling — the
/// overrun is attributed to.
///
/// Errors only on an unusable dump (not valid postmortem JSON); a dump
/// describing a clean run renders fine.
pub fn render_postmortem(spec: &DeploySpec, report: &Report, pm: &Json) -> Result<String, String> {
    let deployment = j_str(pm, "deployment").ok_or("postmortem: missing `deployment`")?;
    let mode = j_str(pm, "mode").ok_or("postmortem: missing `mode`")?;
    let cycle = j_u64(pm, "cycle").ok_or("postmortem: missing `cycle`")?;
    let retained = pm
        .get("recent_events")
        .and_then(Json::as_array)
        .map_or(0, <[Json]>::len);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "postmortem of deployment `{deployment}` ({mode} engine, cycle {cycle})"
    );
    match j_u64(pm, "schema_version") {
        Some(sv) if sv == streamgate_core::profile::SCHEMA_VERSION => {}
        Some(sv) => {
            let _ = writeln!(
                out,
                "warning: schema_version {sv} != supported {}; rendering best-effort",
                streamgate_core::profile::SCHEMA_VERSION
            );
        }
        None => {
            let _ = writeln!(out, "warning: dump carries no schema_version");
        }
    }
    if deployment != spec.name {
        let _ = writeln!(
            out,
            "warning: dump is from deployment `{deployment}` but the analyzed spec is `{}`",
            spec.name
        );
    }
    let _ = writeln!(
        out,
        "recorder: {retained} recent event(s) retained, {} evicted; monitor missed {} event(s)",
        j_u64(pm, "events_dropped").unwrap_or(0),
        j_u64(pm, "monitor_missed").unwrap_or(0)
    );
    let violations = pm.get("violations").and_then(Json::as_array).unwrap_or(&[]);
    let _ = writeln!(out, "violations ({}):", violations.len());
    for v in violations {
        let _ = writeln!(
            out,
            "  [{}] cycle {} gateway `{}` stream `{}`: {}",
            j_str(v, "kind").unwrap_or("?"),
            j_u64(v, "cycle").unwrap_or(0),
            j_str(v, "gateway_name").unwrap_or(""),
            j_str(v, "stream_name").unwrap_or(""),
            j_str(v, "message").unwrap_or("")
        );
    }
    let opens = pm
        .get("open_stalls")
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    for s in opens {
        let _ = writeln!(
            out,
            "open stall: gateway {} `{}` since cycle {} (still stalled at {})",
            j_u64(s, "gateway").unwrap_or(0),
            j_str(s, "cause").unwrap_or("?"),
            j_u64(s, "start").unwrap_or(0),
            j_u64(s, "last").unwrap_or(0)
        );
    }
    let Some(blame) = pm.get("blame").filter(|b| !matches!(b, Json::Null)) else {
        let _ = writeln!(out, "no block attribution in the dump");
        return Ok(out);
    };
    let stream_name = j_str(blame, "stream_name").unwrap_or("");
    let block = blame
        .get("block")
        .ok_or("postmortem: blame without `block`")?;
    let start = j_u64(block, "start").unwrap_or(0);
    let tau = j_u64(block, "tau").unwrap_or(0);
    let completed = matches!(block.get("completed"), Some(Json::Bool(true)));
    let _ = writeln!(
        out,
        "blame: gateway `{}` stream `{stream_name}`, block admitted at cycle {start}, \
         {} {tau} cycle(s)",
        j_str(blame, "gateway_name").unwrap_or(""),
        if completed {
            "completed in"
        } else {
            "in flight for"
        }
    );
    let ceilings = component_ceilings(spec, report);
    let ceiling = ceilings.iter().find(|c| c.name == stream_name);
    let components = block.get("components");
    let mut top: Option<(&'static str, u64)> = None;
    for cause in BlameCause::ALL {
        let measured = components.and_then(|c| j_u64(c, cause.name())).unwrap_or(0);
        if top.is_none_or(|(_, t)| measured > t) {
            top = Some((cause.name(), measured));
        }
        let verdict = match ceiling.map(|c| c.ceiling(cause)) {
            Some(p) if measured > p => format!("{p} EXCEEDED"),
            Some(p) => format!("{p} ok"),
            None => "unknown".to_string(),
        };
        let _ = writeln!(
            out,
            "  {:<16} measured {measured:>8}  predicted ceiling {verdict}",
            cause.name()
        );
    }
    if let (Some(c), Some((top_name, top_cycles))) = (ceiling, top) {
        let top_ceiling = BlameCause::ALL
            .iter()
            .find(|b| b.name() == top_name)
            .map_or(0, |&b| c.ceiling(b));
        if tau > c.tau_budget {
            let _ = writeln!(
                out,
                "stream `{stream_name}` missed tau-hat by {} cycle(s) \
                 ({tau} measured vs budget {}); {top_cycles} attributed to \
                 {top_name}, predicted ceiling {top_ceiling}",
                tau - c.tau_budget,
                c.tau_budget
            );
        } else {
            let _ = writeln!(
                out,
                "stream `{stream_name}` within its tau budget ({tau} vs {}); \
                 top component {top_name} = {top_cycles} cycle(s), \
                 predicted ceiling {top_ceiling}",
                c.tau_budget
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::analyze;

    #[test]
    fn ceilings_cover_fig6_streams() {
        let spec = DeploySpec::fig6();
        let report = analyze(&spec);
        let c = component_ceilings(&spec, &report);
        assert_eq!(c.len(), spec.streams.len());
        for cc in &c {
            // check_for_space defaults on for fig6: head-of-line must be
            // predicted impossible.
            assert_eq!(cc.ceiling(BlameCause::HeadOfLine), 0);
            assert_eq!(cc.ceiling(BlameCause::TdmSlotWait), 0);
            // The ring-transit ceiling of the single-gateway loop is the
            // chain length + 1 segments, each distance 1.
            assert_eq!(
                cc.ceiling(BlameCause::RingTransit),
                spec.chain.len() as u64 + 1
            );
            assert!(cc.ceiling(BlameCause::DmaTransfer) > 0);
            assert!(cc.ceiling(BlameCause::AccelService) > 0);
        }
    }

    #[test]
    fn conformance_flags_exceeded_component() {
        let spec = DeploySpec::fig6();
        let report = analyze(&spec);
        let ceilings = component_ceilings(&spec, &report);
        // A fabricated blame report measuring 1 cycle of TDM wait (ceiling
        // 0) must be flagged; an all-zero one conforms.
        let mut blame = BlameReport {
            deployment: spec.name.clone(),
            mode: "event".into(),
            cycles: 0,
            streams: ceilings
                .iter()
                .map(|c| streamgate_core::attribution::StreamBlame {
                    gateway: c.gateway,
                    stream: c.stream,
                    gateway_name: String::new(),
                    name: c.name.clone(),
                    blocks: 0,
                    tau_sum: 0,
                    totals: [0; 7],
                    maxima: [0; 7],
                    hists: Default::default(),
                    worst: None,
                })
                .collect(),
        };
        assert!(check_blame_conformance(&spec, &report, &blame).is_empty());
        blame.streams[0].maxima[BlameCause::TdmSlotWait.index()] = 1;
        let failures = check_blame_conformance(&spec, &report, &blame);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("tdm-slot-wait"), "{}", failures[0]);
    }
}
