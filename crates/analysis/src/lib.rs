//! Static deployment analyzer for the shared-accelerator platform.
//!
//! This crate inspects a *deployment description* — which real-time streams
//! share which accelerator chain, with what block sizes, buffer capacities,
//! TDM slot tables and network-interface depths — and verifies, **without
//! executing a single simulated cycle**, the properties the paper proves
//! about the gateway architecture:
//!
//! | rule | scope | checks | paper reference |
//! |------|-------|--------|-----------------|
//! | A1   | per pair | CSDF liveness / deadlock-freedom of the per-stream model | Fig. 5 |
//! | A2   | per pair | FIFO / C-FIFO capacity sufficiency, non-monotone trap | Fig. 8, §V-E |
//! | A3   | per pair | per-stream throughput feasibility `η_s/γ ≥ μ_s` | Eq. 5–9 |
//! | A4   | per pair | TDM slot-table feasibility and task-to-slot placement | §III |
//! | A5   | per pair | head-of-line blocking without the check-for-space test | Fig. 9, §V-G |
//! | A6   | per pair | ring credit sufficiency (NI depth vs credit window) | §IV |
//! | A7   | system | cross-gateway ring contention, hop load and credit interference | §IV |
//! | A8   | system | system round feasibility with cross-pair chain sharing | Eq. 3–4, Fig. 10 |
//! | A9   | system | configuration-bus TDM slot-table conflicts across pairs | §III–IV |
//! | A10  | system | end-to-end latency via the single-actor SDF abstraction | Fig. 7 |
//! | A11  | system | per-mode admissibility of every declared stream mode | §V |
//! | A12  | system | closed-form worst-case mode-transition delay | §III, §V |
//! | A13  | system | transition interference-freedom of non-switching streams | Eq. 3–4 |
//!
//! A [`DeploySpec`] comes in two shapes: the original *single-gateway*
//! shape (one chain, one stream set) and the *multi-gateway* shape, where
//! [`spec::GatewayDeploy`] sections place several gateway pairs on one
//! ring, optionally sharing physical accelerator chains (the paper's
//! Fig. 10 deployment — see [`DeploySpec::pal2`]). Rules A1–A6 run once
//! per pair, exactly as they would on the equivalent single-gateway spec;
//! A7–A10 see the whole system.
//!
//! The outcome is a [`Report`] of structured [`Diagnostic`]s (rule id,
//! severity, location, message) that renders as text or machine-readable
//! JSON. A deployment is *accepted* when no diagnostic reaches
//! [`Severity::Error`]; the differential tests in `tests/` validate that
//! verdict against both cycle-level simulation engines — accepted
//! configurations meet their τ̂/γ bounds, rejected ones demonstrably
//! deadlock, wedge or miss their throughput.
//!
//! The [`profile`] module closes the loop the other way: a measured
//! `RunProfile` from a profiled simulation run feeds measured per-hop
//! burstiness back into A7 (differential check: every measured arrival
//! curve must be dominated by the predicted [`profile::RingEnvelope`]) and
//! measured arrival jitter into A10, via [`analyze_profiled`]; and
//! [`monitor_for`] arms an online monitor with the analyzer's bounds.
#![deny(missing_docs)]

pub mod blame;
pub mod diag;
pub mod incremental;
pub mod json;
pub mod profile;
pub mod rules;
pub mod spec;

pub use blame::{
    check_blame_conformance, component_ceilings, render_postmortem, ComponentCeilings,
};
pub use diag::{sort_diagnostics, Diagnostic, Location, Report, RuleId, Severity, StreamBounds};
pub use incremental::{
    parse_delta_script, AdmissionController, AdmissionError, AdmissionOutcome, AdmissionVerdict,
    AnalysisState, Delta, DeltaError,
};
pub use json::Json;
pub use profile::{
    analyze_profiled, monitor_config_for, monitor_for, multi_tau_margin, parse_profile,
    round_margin, tau_margin, RingEnvelope,
};
pub use rules::{
    analyze, analyze_with, mode_reports, transition_delay_bound, AnalysisOptions, ModeReport,
    TransitionBound,
};
pub use spec::{
    ChainStage, DeploySpec, GatewayDeploy, GatewayView, MultiBuiltSystem, ProcessorDeploy,
    RingLayout, StreamDeploy, StreamMode, StreamModes, TaskDeploy, ToDeploySpec,
};
