//! Static deployment analyzer for the shared-accelerator platform.
//!
//! This crate inspects a *deployment description* — which real-time streams
//! share which accelerator chain, with what block sizes, buffer capacities,
//! TDM slot tables and network-interface depths — and verifies, **without
//! executing a single simulated cycle**, the properties the paper proves
//! about the gateway architecture:
//!
//! | rule | checks | paper reference |
//! |------|--------|-----------------|
//! | A1   | CSDF liveness / deadlock-freedom of the per-stream model | Fig. 5 |
//! | A2   | FIFO / C-FIFO capacity sufficiency, non-monotone trap | Fig. 8, §V-E |
//! | A3   | per-stream throughput feasibility `η_s/γ ≥ μ_s` | Eq. 5–9 |
//! | A4   | TDM slot-table feasibility, replication-interval consistency | §III |
//! | A5   | head-of-line blocking without the check-for-space test | Fig. 9, §V-G |
//! | A6   | ring credit sufficiency (NI depth vs credit window) | §IV |
//!
//! The outcome is a [`Report`] of structured [`Diagnostic`]s (rule id,
//! severity, location, message) that renders as text or machine-readable
//! JSON. A deployment is *accepted* when no diagnostic reaches
//! [`Severity::Error`]; the differential tests in `tests/` validate that
//! verdict against both cycle-level simulation engines — accepted
//! configurations meet their τ̂/γ bounds, rejected ones demonstrably
//! deadlock, wedge or miss their throughput.
#![deny(missing_docs)]

pub mod diag;
pub mod json;
pub mod rules;
pub mod spec;

pub use diag::{Diagnostic, Location, Report, RuleId, Severity, StreamBounds};
pub use json::Json;
pub use rules::{analyze, analyze_with, AnalysisOptions};
pub use spec::{ChainStage, DeploySpec, ProcessorDeploy, StreamDeploy, TaskDeploy};
