//! The analysis rules A1–A13 and the [`analyze`] entry point.
//!
//! Every rule checks a compile-time property the paper derives for the
//! gateway architecture (see DESIGN.md §8 for the rule ↔ equation/figure
//! map). None of them executes a simulated platform cycle: A1 runs the
//! *analytical* self-timed execution of the per-stream CSDF model (the
//! `dataflow` machinery of Fig. 5), everything else is arithmetic over the
//! deployment description.
//!
//! Rules A1–A6 are *per gateway pair*: they run once per
//! [`GatewayView`], so a multi-gateway spec gets each pair checked in
//! isolation exactly as a PR-3 single-gateway spec would be. Rules A7–A10
//! are *system scope*: ring contention across pairs (A7), the system round
//! with cross-pair chain sharing (A8), configuration-bus slot tables (A9)
//! and end-to-end latency through the Fig. 7 single-actor abstraction
//! (A10). Rules A11–A13 analyse the multi-mode declarations of
//! [`DeploySpec::modes`]: per-mode admissibility through the incremental
//! facts cache (A11), closed-form worst-case transition delay (A12) and
//! interference-freedom of non-switching streams throughout a transition
//! window (A13).

use crate::diag::{Diagnostic, Location, Report, RuleId, Severity, StreamBounds};
use crate::spec::{DeploySpec, GatewayView, StreamDeploy};
use streamgate_core::{fig5_csdf, minimum_stream_buffers, Fig5Params, SharingProblem};
use streamgate_ilp::Rational;

/// Largest block size for which the exact MCM-based minimum-buffer search
/// (and with it the Fig. 8 non-monotonicity probe) still runs in
/// micro/milliseconds; beyond it A2 falls back to the analytic floors.
const EXACT_BUFFER_ETA_LIMIT: u64 = 64;

/// Tuning knobs for [`analyze_with`].
#[derive(Clone, Copy, Debug)]
pub struct AnalysisOptions {
    /// Run the exact MCM-based minimum-buffer search and the Fig. 8
    /// non-monotonicity probe (rule A2). The search is exhaustive over the
    /// capacity box, which costs seconds per stream in unoptimised builds —
    /// batch consumers (the differential harness analyses hundreds of
    /// deployments) turn it off. All findings it produces are *Warnings*,
    /// so disabling it never changes the accept/reject verdict.
    pub exact_buffers: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            exact_buffers: true,
        }
    }
}

/// Run every rule over `spec` with default options and collect the findings
/// into a [`Report`].
pub fn analyze(spec: &DeploySpec) -> Report {
    analyze_with(spec, &AnalysisOptions::default())
}

/// Run every rule over `spec` and collect the findings into a [`Report`].
pub fn analyze_with(spec: &DeploySpec, opts: &AnalysisOptions) -> Report {
    assemble_report(spec, &Facts::compute(spec, opts))
}

/// Cached per-pair facts: everything the *expensive* per-gateway rules
/// (A1 CSDF liveness, A2 exact buffer search, A3 with the Algorithm 1
/// solve, A5, A6 and the structural checks) produce for one
/// [`GatewayView`]. These depend only on the pair's own chain, parameters
/// and streams — never on any other pair's stream set — so a stream
/// add/remove/retune on one gateway invalidates exactly one `PairFacts`.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct PairFacts {
    /// Per-pair diagnostics with stream locations indexed *locally*
    /// (0-based within the pair); [`assemble_report`] remaps them onto the
    /// flat cross-gateway stream numbering.
    pub(crate) diags: Vec<Diagnostic>,
    /// τ̂ per local stream: `R_s + (η_s + 2)·c0` (Eq. 2) with the pair's
    /// own `c0` — the input the system-scope round rule A8 consumes.
    pub(crate) taus: Vec<u64>,
    /// Aggregate chain utilisation `c0·Σμ` of the pair (Eq. 8).
    pub(crate) util: Rational,
}

impl PairFacts {
    pub(crate) fn compute(
        spec: &DeploySpec,
        view: &GatewayView,
        opts: &AnalysisOptions,
    ) -> PairFacts {
        let mut diags = Vec::new();
        let prob = view.sharing_problem();
        let etas = view.etas();
        let gamma = if view.streams.is_empty() {
            0
        } else {
            prob.gamma(&etas)
        };
        let util = prob.utilisation();
        let structurally_ok = check_structure(spec, view, 0, &mut diags);
        let throughput_ok = check_throughput(spec, view, 0, &prob, &etas, gamma, &util, &mut diags);
        check_buffers(
            spec,
            view,
            0,
            &prob,
            &etas,
            gamma,
            throughput_ok,
            opts,
            &mut diags,
        );
        check_space_check(spec, view, 0, &mut diags);
        check_credits(spec, view, &mut diags);
        check_liveness(spec, view, 0, &prob, &etas, structurally_ok, &mut diags);
        let c0 = view.c0();
        let taus = view
            .streams
            .iter()
            .map(|s| s.reconfig + (s.eta_in + 2) * c0)
            .collect();
        PairFacts { diags, taus, util }
    }
}

/// One pair's additive contribution to the A7 ring-load accounting: dense
/// per-hop load floors/ceilings on the data and credit rings, plus the
/// set of data-ring hops the pair's blocks cross. Contributions are pure
/// functions of the ring layout (which stream churn never changes) and
/// the pair's own streams, so [`assemble_report`] can re-sum them in
/// O(gateways × stations) without re-walking any unaffected pair.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct RingContrib {
    /// Provable per-hop load floor on the data ring, flits/cycle.
    pub(crate) data_min: Vec<Rational>,
    /// Per-hop load ceiling on the data ring, flits/cycle.
    pub(crate) data_max: Vec<Rational>,
    /// Provable per-hop load floor on the credit ring.
    pub(crate) credit_min: Vec<Rational>,
    /// Per-hop load ceiling on the credit ring.
    pub(crate) credit_max: Vec<Rational>,
    /// Data-ring hops this pair's blocks cross (deduplicated).
    pub(crate) hops: Vec<usize>,
}

impl RingContrib {
    pub(crate) fn compute(layout: &crate::spec::RingLayout, view: &GatewayView) -> RingContrib {
        let zero = Rational::from_int(0);
        let mut c = RingContrib {
            data_min: vec![zero; layout.nodes],
            data_max: vec![zero; layout.nodes],
            credit_min: vec![zero; layout.nodes],
            credit_max: vec![zero; layout.nodes],
            hops: Vec::new(),
        };
        let segs = layout.segments(view.index);
        for s in view.streams {
            let ratio = if s.eta_out >= s.eta_in {
                Rational::ONE
            } else {
                Rational::new(s.eta_out as i128, s.eta_in as i128)
            };
            for (k, &(src, dst)) in segs.iter().enumerate() {
                let wmin = if k == 0 { s.mu } else { s.mu * ratio };
                for h in layout.data_hops(src, dst) {
                    c.data_min[h] += wmin;
                    c.data_max[h] += s.mu;
                    if !c.hops.contains(&h) {
                        c.hops.push(h);
                    }
                }
                for h in layout.credit_hops(src, dst) {
                    c.credit_min[h] += wmin;
                    c.credit_max[h] += s.mu;
                }
            }
        }
        c
    }
}

/// The analyzer's cached intermediate state: per-pair facts, per-pair ring
/// contributions, and the stream-churn-invariant A4 TDM diagnostics.
/// [`assemble_report`] turns this into a full [`Report`] by re-running
/// only the cheap system-scope arithmetic (A7 summation, A8 Eq. 3–4, A9
/// slot tables, A10 latency composition) — which is what makes the
/// incremental admission analysis both fast and *exactly* equivalent to a
/// fresh full run.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Facts {
    /// One entry per gateway view, in view order.
    pub(crate) pairs: Vec<PairFacts>,
    /// One A7 contribution per gateway view, in view order.
    pub(crate) ring: Vec<RingContrib>,
    /// A4 TDM diagnostics — processors are untouched by stream churn.
    pub(crate) tdm: Vec<Diagnostic>,
    /// A11–A13 multi-mode facts, one per [`DeploySpec::modes`] declaration.
    pub(crate) modes: Vec<ModeFacts>,
}

impl Facts {
    /// Full evaluation of every cached fact (the expensive path).
    pub(crate) fn compute(spec: &DeploySpec, opts: &AnalysisOptions) -> Facts {
        let views = spec.gateway_views();
        let layout = spec.ring_layout();
        let mut facts = Facts {
            pairs: views
                .iter()
                .map(|v| PairFacts::compute(spec, v, opts))
                .collect(),
            ring: views
                .iter()
                .map(|v| RingContrib::compute(&layout, v))
                .collect(),
            tdm: {
                let mut d = Vec::new();
                check_tdm(spec, &mut d);
                d
            },
            modes: Vec::new(),
        };
        let modes = compute_mode_facts(spec, opts, &facts);
        facts.modes = modes;
        facts
    }

    /// Re-evaluate the cached facts of gateway `g` only — the
    /// O(affected-gateways) path. `spec` must differ from the spec these
    /// facts were computed from in gateway `g`'s stream list alone.
    ///
    /// Mode facts are refreshed for *every* declaration: a per-mode
    /// candidate substitutes into the whole system (its report spans all
    /// gateways), so each refresh still costs only one gateway
    /// re-evaluation per declared mode, never a full [`Facts::compute`].
    pub(crate) fn recompute_gateway(
        &mut self,
        spec: &DeploySpec,
        g: usize,
        opts: &AnalysisOptions,
    ) {
        let views = spec.gateway_views();
        let layout = spec.ring_layout();
        self.pairs[g] = PairFacts::compute(spec, &views[g], opts);
        self.ring[g] = RingContrib::compute(&layout, &views[g]);
        let modes = compute_mode_facts(spec, opts, self);
        self.modes = modes;
    }
}

/// Cached A11–A13 facts of one [`crate::spec::StreamModes`] declaration:
/// the finished diagnostics (final flat-indexed locations) plus the
/// per-mode candidate reports rule A11 derived from the base facts.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct ModeFacts {
    /// A11–A13 findings, ready for [`assemble_report`] to splice in.
    pub(crate) diags: Vec<Diagnostic>,
    /// Per declared mode (declaration order): the mode name and the full
    /// report of its equivalent single-mode candidate spec. Empty when the
    /// declaration is structurally invalid.
    pub(crate) reports: Vec<(String, Report)>,
}

/// The A12 closed-form worst-case transition-delay bound, decomposed into
/// the four phases a run-time mode switch passes through. All figures are
/// cycles; [`TransitionBound::total`] is the bound rule A12 reports and
/// the online monitor is armed with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransitionBound {
    /// Drain-to-idle of in-flight blocks under the *old* mode's round
    /// bound: the run-time splice waits for the gateway to fall idle
    /// inside its configuration slot, retrying up to 8 times with an
    /// 8-round + fill-slack budget per attempt.
    pub drain: u64,
    /// Worst-case wait for the gateway's configuration-bus slot (one full
    /// TDM frame of the config bus; 0 when no bus period is declared).
    pub align: u64,
    /// Configuration-bus save/restore windows: the old mode's state is
    /// saved (R_old) and the new mode's configuration loaded (R_new).
    pub save_restore: u64,
    /// First-round ramp-in of the new mode: one worst-case round under
    /// the new mode's bounds plus the measurement margin the monitor
    /// grants steady-state rounds.
    pub ramp: u64,
}

impl TransitionBound {
    /// Total worst-case cycles from the switch request to the new mode's
    /// steady state.
    pub fn total(&self) -> u64 {
        self.drain + self.align + self.save_restore + self.ramp
    }
}

/// A12 — the closed-form worst-case delay of retuning one stream of
/// `gateway` from configuration `old` to configuration `new`, where
/// `gamma_old` / `gamma_new` are the system round bounds (Eq. 3–4) of the
/// deployment with the respective configuration in force. The bound is
/// conservative by construction: every phase uses the analyzer's
/// worst-case figure, so a run-time switch always completes within
/// [`TransitionBound::total`] cycles (the differential harness checks
/// predicted ≥ measured on both engines).
pub fn transition_delay_bound(
    spec: &DeploySpec,
    gateway: usize,
    old: &StreamDeploy,
    new: &StreamDeploy,
    gamma_old: u64,
    gamma_new: u64,
) -> TransitionBound {
    let views = spec.gateway_views();
    let v = &views[gateway];
    let p = spec.config_bus_period.unwrap_or(0);
    let margin = if spec.is_multi() {
        crate::profile::multi_tau_margin(spec, v.chain.len() as u64, v.c0())
    } else {
        crate::profile::tau_margin(spec)
    };
    TransitionBound {
        drain: 8 * (8 * gamma_old + 4000 + p),
        align: p,
        save_restore: old.reconfig + new.reconfig,
        ramp: gamma_new + margin * v.streams.len() as u64 + 16,
    }
}

/// One entry of [`mode_reports`]: the rule A11 candidate report of one
/// declared mode.
#[derive(Clone, Debug, PartialEq)]
pub struct ModeReport {
    /// Gateway index of the owning declaration.
    pub gateway: usize,
    /// Stream the mode belongs to.
    pub stream: String,
    /// Mode name.
    pub mode: String,
    /// The full report of the mode's equivalent single-mode spec —
    /// byte-identical to `analyze_with` of
    /// [`DeploySpec::single_mode_candidate`].
    pub report: Report,
}

/// The per-mode A11 candidate reports of every structurally valid
/// declaration in `spec.modes`, computed through the incremental facts
/// cache (each mode costs one gateway re-evaluation, not a full
/// analysis).
pub fn mode_reports(spec: &DeploySpec, opts: &AnalysisOptions) -> Vec<ModeReport> {
    let facts = Facts::compute(spec, opts);
    spec.modes
        .iter()
        .zip(&facts.modes)
        .flat_map(|(decl, mf)| {
            mf.reports.iter().map(move |(name, r)| ModeReport {
                gateway: decl.gateway,
                stream: decl.stream.clone(),
                mode: name.clone(),
                report: r.clone(),
            })
        })
        .collect()
}

/// Evaluate rules A11–A13 for every [`DeploySpec::modes`] declaration
/// against the cached base facts. Each declared mode is analysed as the
/// equivalent single-mode candidate spec by cloning the base facts and
/// re-evaluating only the owning gateway — the incremental path that makes
/// N declared modes cost N gateway re-evaluations instead of N full runs.
fn compute_mode_facts(spec: &DeploySpec, opts: &AnalysisOptions, base: &Facts) -> Vec<ModeFacts> {
    if spec.modes.is_empty() {
        return Vec::new();
    }
    let views = spec.gateway_views();
    let offsets: Vec<usize> = views
        .iter()
        .scan(0usize, |acc, v| {
            let o = *acc;
            *acc += v.streams.len();
            Some(o)
        })
        .collect();
    spec.modes
        .iter()
        .enumerate()
        .map(|(di, decl)| {
            let mut diags = Vec::new();
            let mut reports = Vec::new();
            let mut structural_ok = true;
            let g = decl.gateway;
            if spec.modes[..di]
                .iter()
                .any(|e| e.gateway == g && e.stream == decl.stream)
            {
                diags.push(Diagnostic {
                    rule: RuleId::A11ModeAdmissibility,
                    severity: Severity::Error,
                    location: Location::Deployment,
                    message: format!(
                        "duplicate multi-mode declaration for stream '{}' on gateway {g}",
                        decl.stream
                    ),
                });
                structural_ok = false;
            }
            if g >= views.len() {
                diags.push(Diagnostic {
                    rule: RuleId::A11ModeAdmissibility,
                    severity: Severity::Error,
                    location: Location::Deployment,
                    message: format!(
                        "mode declaration for stream '{}' references unknown gateway {g} \
                         ({} present)",
                        decl.stream,
                        views.len()
                    ),
                });
                return ModeFacts { diags, reports };
            }
            let v = &views[g];
            let Some(local) = v.streams.iter().position(|s| s.name == decl.stream) else {
                diags.push(Diagnostic {
                    rule: RuleId::A11ModeAdmissibility,
                    severity: Severity::Error,
                    location: gw_loc(spec, v),
                    message: format!(
                        "mode declaration references unknown stream '{}'",
                        decl.stream
                    ),
                });
                return ModeFacts { diags, reports };
            };
            let flat = offsets[g] + local;
            let loc = Location::Stream {
                index: flat,
                name: decl.stream.clone(),
            };
            if decl.modes.is_empty() {
                diags.push(Diagnostic {
                    rule: RuleId::A11ModeAdmissibility,
                    severity: Severity::Warning,
                    location: loc.clone(),
                    message: "multi-mode declaration lists no modes: nothing to switch to".into(),
                });
                structural_ok = false;
            }
            for (i, m) in decl.modes.iter().enumerate() {
                if decl.modes[..i].iter().any(|e| e.name == m.name) {
                    diags.push(Diagnostic {
                        rule: RuleId::A11ModeAdmissibility,
                        severity: Severity::Error,
                        location: loc.clone(),
                        message: format!("duplicate mode name '{}'", m.name),
                    });
                    structural_ok = false;
                }
            }
            for (f, t) in &decl.transitions {
                for name in [f, t] {
                    if decl.mode(name).is_none() {
                        diags.push(Diagnostic {
                            rule: RuleId::A11ModeAdmissibility,
                            severity: Severity::Error,
                            location: loc.clone(),
                            message: format!(
                                "transition ('{f}' -> '{t}') references undeclared mode \
                                 '{name}'"
                            ),
                        });
                        structural_ok = false;
                    }
                }
            }
            if !structural_ok {
                return ModeFacts { diags, reports };
            }

            // A11 — per-mode candidate reports from the cached base facts:
            // clone, re-evaluate the one owning gateway, assemble.
            let mut mode_taus = Vec::new();
            let mut mode_rings = Vec::new();
            for m in &decl.modes {
                let candidate = spec
                    .single_mode_candidate(g, &decl.stream, &m.config)
                    .expect("declaration validated above");
                let mut cf = Facts {
                    pairs: base.pairs.clone(),
                    ring: base.ring.clone(),
                    tdm: base.tdm.clone(),
                    modes: Vec::new(),
                };
                cf.recompute_gateway(&candidate, g, opts);
                mode_taus.push(cf.pairs[g].taus[local]);
                mode_rings.push(cf.ring[g].clone());
                reports.push((m.name.clone(), assemble_report(&candidate, &cf)));
            }
            let mut all_admissible = true;
            for (name, r) in &reports {
                if !r.is_accepted() {
                    all_admissible = false;
                    let first = r
                        .with_severity(Severity::Error)
                        .next()
                        .map(|d| d.message.clone())
                        .unwrap_or_default();
                    diags.push(Diagnostic {
                        rule: RuleId::A11ModeAdmissibility,
                        severity: Severity::Error,
                        location: loc.clone(),
                        message: format!(
                            "mode '{name}' is inadmissible as a single-mode deployment: \
                             {} error(s); first: {first}",
                            r.error_count()
                        ),
                    });
                }
            }
            if all_admissible {
                diags.push(Diagnostic {
                    rule: RuleId::A11ModeAdmissibility,
                    severity: Severity::Info,
                    location: loc.clone(),
                    message: format!(
                        "all {} declared mode(s) independently pass A1-A10",
                        reports.len()
                    ),
                });
            }

            // A12 — worst-case transition delay per allowed transition.
            let idx = |name: &str| decl.modes.iter().position(|m| m.name == name).unwrap();
            let pairs_to_check: Vec<(usize, usize)> = if decl.transitions.is_empty() {
                (0..decl.modes.len())
                    .flat_map(|a| (0..decl.modes.len()).map(move |b| (a, b)))
                    .filter(|&(a, b)| a != b)
                    .collect()
            } else {
                decl.transitions
                    .iter()
                    .map(|(f, t)| (idx(f), idx(t)))
                    .collect()
            };
            for &(a, b) in &pairs_to_check {
                let bound = transition_delay_bound(
                    spec,
                    g,
                    &decl.modes[a].config,
                    &decl.modes[b].config,
                    reports[a].1.gamma,
                    reports[b].1.gamma,
                );
                diags.push(Diagnostic {
                    rule: RuleId::A12TransitionDelay,
                    severity: Severity::Info,
                    location: loc.clone(),
                    message: format!(
                        "transition '{}' -> '{}': worst-case delay <= {} cycles \
                         (drain {} + slot alignment {} + save/restore {} + ramp-in {})",
                        decl.modes[a].name,
                        decl.modes[b].name,
                        bound.total(),
                        bound.drain,
                        bound.align,
                        bound.save_restore,
                        bound.ramp
                    ),
                });
            }

            // A13 — interference-freedom: every non-switching stream keeps
            // its Eq. 3–4 round bound and buffer margins under the
            // worst-of-modes τ̂ of the switcher, and the additive A7 ring
            // loads stay under one flit/cycle with the switcher's
            // worst-of-modes contribution substituted in.
            let worst_tau = mode_taus
                .iter()
                .copied()
                .chain([base.pairs[g].taus[local]])
                .max()
                .unwrap();
            let mut taus_w: Vec<Vec<u64>> = base.pairs.iter().map(|p| p.taus.clone()).collect();
            taus_w[g][local] = worst_tau;
            let tau_refs: Vec<&[u64]> = taus_w.iter().map(|t| t.as_slice()).collect();
            let (gamma_w, _) = system_round_bounds_from_taus(&views, &tau_refs);
            let mut interference_free = true;
            for (gi, (_, s)) in views
                .iter()
                .flat_map(|w| w.streams.iter().map(move |s| (w, s)))
                .enumerate()
            {
                if gi == flat || !s.mu.is_positive() || s.eta_in == 0 || gamma_w[gi] == 0 {
                    continue;
                }
                let gw = gamma_w[gi];
                let sloc = Location::Stream {
                    index: gi,
                    name: s.name.clone(),
                };
                if Rational::new(s.eta_in as i128, gw as i128) < s.mu {
                    interference_free = false;
                    diags.push(Diagnostic {
                        rule: RuleId::A13TransitionInterference,
                        severity: Severity::Error,
                        location: sloc,
                        message: format!(
                            "transitions of '{}' break this stream's round bound: \
                             eta/gamma = {}/{gw} < mu = {} under the switcher's \
                             worst-of-modes tau-hat = {worst_tau} — Eq. 3-4 must hold \
                             throughout the transition window",
                            decl.stream, s.eta_in, s.mu
                        ),
                    });
                    continue;
                }
                let influx = (s.mu * Rational::from_int(gw as i128)).ceil().max(0) as u64;
                if s.input_capacity < s.eta_in + influx {
                    interference_free = false;
                    diags.push(Diagnostic {
                        rule: RuleId::A13TransitionInterference,
                        severity: Severity::Warning,
                        location: sloc,
                        message: format!(
                            "input capacity {} < eta_in + ceil(mu*gamma) = {} + {influx} \
                             while '{}' transitions: a hard producer can overflow \
                             within the transition window",
                            s.input_capacity, s.eta_in, decl.stream
                        ),
                    });
                }
            }
            let layout = spec.ring_layout();
            let mut worst_ring = base.ring[g].clone();
            for c in &mode_rings {
                for h in 0..layout.nodes {
                    if c.data_min[h] > worst_ring.data_min[h] {
                        worst_ring.data_min[h] = c.data_min[h];
                    }
                    if c.credit_min[h] > worst_ring.credit_min[h] {
                        worst_ring.credit_min[h] = c.credit_min[h];
                    }
                }
            }
            for ring_name in ["data", "credit"] {
                for h in 0..layout.nodes {
                    let mut load = Rational::from_int(0);
                    for w in &views {
                        let c = if w.index == g {
                            &worst_ring
                        } else {
                            &base.ring[w.index]
                        };
                        load += if ring_name == "data" {
                            c.data_min[h]
                        } else {
                            c.credit_min[h]
                        };
                    }
                    if load > Rational::ONE {
                        interference_free = false;
                        diags.push(Diagnostic {
                            rule: RuleId::A13TransitionInterference,
                            severity: Severity::Error,
                            location: Location::Deployment,
                            message: format!(
                                "{ring_name}-ring hop {h} over-committed while '{}' \
                                 transitions: worst-of-modes sustained load {}/{} > 1 \
                                 flit/cycle",
                                decl.stream,
                                load.numer(),
                                load.denom()
                            ),
                        });
                    }
                }
            }
            if interference_free {
                diags.push(Diagnostic {
                    rule: RuleId::A13TransitionInterference,
                    severity: Severity::Info,
                    location: loc,
                    message: format!(
                        "transitions are interference-free: every non-switching stream \
                         keeps its Eq. 3-4 round bound, buffer margin and ring-load \
                         budget under '{}' worst-of-modes load",
                        decl.stream
                    ),
                });
            }
            ModeFacts { diags, reports }
        })
        .collect()
}

/// Assemble a [`Report`] from cached [`Facts`]: remap the per-pair
/// diagnostics onto the flat stream numbering, then run the system-scope
/// rules A7–A10 (cheap linear arithmetic over the cached τ̂ vectors and
/// ring contributions) and sort everything into the canonical order.
pub(crate) fn assemble_report(spec: &DeploySpec, facts: &Facts) -> Report {
    let views = spec.gateway_views();
    let mut diags = Vec::new();

    // Multi-gateway structural defects first: a malformed gateway section
    // voids the per-pair interpretation below.
    for (g, msg) in spec.gateway_structure_errors() {
        diags.push(Diagnostic {
            rule: RuleId::A1Liveness,
            severity: Severity::Error,
            location: Location::Gateway {
                index: g,
                name: spec
                    .gateways
                    .get(g)
                    .map(|x| x.name.clone())
                    .unwrap_or_default(),
            },
            message: format!("structurally invalid gateway section: {msg}"),
        });
    }

    // Per-pair rules A1–A6 from the cache, with globally offset stream
    // indices so diagnostics and bounds use one flat numbering.
    let mut util_max = Rational::from_int(0);
    let mut offset = 0;
    for v in &views {
        let pf = &facts.pairs[v.index];
        if pf.util > util_max {
            util_max = pf.util;
        }
        for d in &pf.diags {
            let mut d = d.clone();
            if let Location::Stream { index, .. } = &mut d.location {
                *index += offset;
            }
            diags.push(d);
        }
        offset += v.streams.len();
    }
    diags.extend(facts.tdm.iter().cloned());

    // Multi-mode rules A11–A13 from the cached per-declaration facts.
    for mf in &facts.modes {
        diags.extend(mf.diags.iter().cloned());
    }

    // System-scope rules A7–A10.
    let taus: Vec<&[u64]> = facts.pairs.iter().map(|p| p.taus.as_slice()).collect();
    let gamma_sys = check_system_round(spec, &views, &taus, &mut diags);
    check_ring(spec, &views, &facts.ring, &mut diags);
    check_config_bus(spec, &views, &mut diags);
    check_latency(spec, &views, &gamma_sys, &mut diags);
    check_fusion(spec, &views, &mut diags);

    // Canonical order: insertion-order-independent, so reports built from
    // cached facts and from a fresh full run are byte-identical.
    crate::diag::sort_diagnostics(&mut diags);

    let mut bounds = Vec::new();
    let mut gi = 0;
    for v in &views {
        for (i, s) in v.streams.iter().enumerate() {
            let tau_hat = facts.pairs[v.index].taus[i];
            bounds.push(StreamBounds {
                stream: s.name.clone(),
                eta_in: s.eta_in,
                tau_hat,
                omega_hat: gamma_sys[gi].saturating_sub(tau_hat),
                mu: (s.mu.numer(), s.mu.denom()),
            });
            gi += 1;
        }
    }

    Report {
        deployment: spec.name.clone(),
        diagnostics: diags,
        gamma: gamma_sys.iter().copied().max().unwrap_or(0),
        utilisation: (util_max.numer(), util_max.denom()),
        bounds,
    }
}

fn stream_loc(view: &GatewayView, offset: usize, local: usize) -> Location {
    Location::Stream {
        index: offset + local,
        name: view.streams[local].name.clone(),
    }
}

/// Gateway-level findings land on the deployment in the single-gateway
/// shape (the PR-3 wording) and on the named pair in the multi shape.
fn gw_loc(spec: &DeploySpec, view: &GatewayView) -> Location {
    if spec.is_multi() {
        Location::Gateway {
            index: view.index,
            name: view.name.to_string(),
        }
    } else {
        Location::Deployment
    }
}

/// Structural sanity: block sizes and rates that the rest of the analysis
/// (and the Fig. 5 model construction) relies on. Returns a per-stream
/// "sound enough to model" flag.
fn check_structure(
    spec: &DeploySpec,
    view: &GatewayView,
    offset: usize,
    diags: &mut Vec<Diagnostic>,
) -> Vec<bool> {
    let mut ok = vec![true; view.streams.len()];
    if view.chain.is_empty() {
        diags.push(Diagnostic {
            rule: RuleId::A1Liveness,
            severity: Severity::Error,
            location: gw_loc(spec, view),
            message: "the accelerator chain is empty: there is nothing to share".into(),
        });
        ok.iter_mut().for_each(|v| *v = false);
    }
    if view.streams.is_empty() {
        diags.push(Diagnostic {
            rule: RuleId::A1Liveness,
            severity: Severity::Warning,
            location: gw_loc(spec, view),
            message: "no streams are deployed on the chain".into(),
        });
    }
    for (i, s) in view.streams.iter().enumerate() {
        if s.eta_in == 0 || s.eta_out == 0 {
            diags.push(Diagnostic {
                rule: RuleId::A1Liveness,
                severity: Severity::Error,
                location: stream_loc(view, offset, i),
                message: format!(
                    "block sizes must be positive (eta_in = {}, eta_out = {})",
                    s.eta_in, s.eta_out
                ),
            });
            ok[i] = false;
            continue;
        }
        if s.eta_out > s.eta_in {
            diags.push(Diagnostic {
                rule: RuleId::A1Liveness,
                severity: Severity::Warning,
                location: stream_loc(view, offset, i),
                message: format!(
                    "eta_out {} > eta_in {}: interpolating chains are outside the \
                     analysed model; bounds assume eta_out <= eta_in",
                    s.eta_out, s.eta_in
                ),
            });
        } else if s.eta_in % s.eta_out != 0 {
            diags.push(Diagnostic {
                rule: RuleId::A1Liveness,
                severity: Severity::Warning,
                location: stream_loc(view, offset, i),
                message: format!(
                    "eta_in {} is not an integer multiple of eta_out {}: the chain's \
                     decimation factor is fractional per block",
                    s.eta_in, s.eta_out
                ),
            });
        }
        if !s.mu.is_positive() {
            diags.push(Diagnostic {
                rule: RuleId::A3Throughput,
                severity: Severity::Error,
                location: stream_loc(view, offset, i),
                message: format!("required throughput mu = {} must be positive", s.mu),
            });
            ok[i] = false;
        }
    }
    ok
}

/// A3 — Eq. 5–9: aggregate utilisation and the per-stream throughput
/// constraint `η_s/γ ≥ μ_s`. Returns a per-stream pass flag.
#[allow(clippy::too_many_arguments)]
fn check_throughput(
    spec: &DeploySpec,
    view: &GatewayView,
    offset: usize,
    prob: &SharingProblem,
    etas: &[u64],
    gamma: u64,
    util: &Rational,
    diags: &mut Vec<Diagnostic>,
) -> Vec<bool> {
    let mut ok = vec![true; view.streams.len()];
    if view.streams.is_empty() {
        return ok;
    }
    if view.streams.iter().any(|s| !s.mu.is_positive()) {
        // Structural error already reported; utilisation is meaningless.
        ok.iter_mut().for_each(|v| *v = false);
        return ok;
    }
    if *util >= Rational::ONE {
        diags.push(Diagnostic {
            rule: RuleId::A3Throughput,
            severity: Severity::Error,
            location: gw_loc(spec, view),
            message: format!(
                "aggregate chain utilisation c0*sum(mu) = {}/{} >= 1: every sample \
                 occupies the chain for c0 = {} cycles, so NO block sizes can meet \
                 the required rates (Eq. 8)",
                util.numer(),
                util.denom(),
                prob.params.c0()
            ),
        });
        ok.iter_mut().for_each(|v| *v = false);
        return ok;
    }
    let gamma_r = Rational::from_int(gamma as i128);
    for (i, s) in view.streams.iter().enumerate() {
        let need = s.mu * gamma_r; // minimum η for this γ (Eq. 5)
        if Rational::from_int(etas[i] as i128) < need {
            let need_eta = need.ceil();
            diags.push(Diagnostic {
                rule: RuleId::A3Throughput,
                severity: Severity::Error,
                location: stream_loc(view, offset, i),
                message: format!(
                    "throughput infeasible (Eq. 5): eta/gamma = {}/{gamma} < mu = {}; \
                     with this round the stream needs eta >= {need_eta} (or smaller \
                     blocks elsewhere to shrink gamma)",
                    etas[i], s.mu
                ),
            });
            ok[i] = false;
        }
    }
    if ok.iter().all(|&v| v) {
        // Report the Algorithm 1 minimum for context: how much slack the
        // configured block sizes leave.
        if let Ok(min) = streamgate_core::solve_blocksizes_checked(prob) {
            diags.push(Diagnostic {
                rule: RuleId::A3Throughput,
                severity: Severity::Info,
                location: gw_loc(spec, view),
                message: format!(
                    "Eq. 5 holds for every stream; Algorithm 1 minimum block sizes \
                     {:?} (gamma = {}), configured {:?} (gamma = {gamma})",
                    min.etas, min.gamma, etas
                ),
            });
        }
    }
    ok
}

/// A2 — buffer capacity sufficiency (Fig. 8): hard floors (a C-FIFO must
/// hold one whole block for the gateway to ever admit it), round-length
/// influx, the exact minimum capacities where affordable, and the
/// non-monotone trap probe.
#[allow(clippy::too_many_arguments)]
fn check_buffers(
    spec: &DeploySpec,
    view: &GatewayView,
    offset: usize,
    prob: &SharingProblem,
    etas: &[u64],
    gamma: u64,
    throughput_ok: Vec<bool>,
    opts: &AnalysisOptions,
    diags: &mut Vec<Diagnostic>,
) {
    let gamma_r = Rational::from_int(gamma as i128);
    for (i, s) in view.streams.iter().enumerate() {
        if s.eta_in == 0 || s.eta_out == 0 {
            continue; // structural error already reported
        }
        if s.input_capacity < s.eta_in {
            diags.push(Diagnostic {
                rule: RuleId::A2BufferCapacity,
                severity: Severity::Error,
                location: stream_loc(view, offset, i),
                message: format!(
                    "input capacity {} < eta_in {}: a full block never fits, the \
                     gateway can never admit this stream (deadlock)",
                    s.input_capacity, s.eta_in
                ),
            });
            continue;
        }
        if s.output_capacity < s.eta_out && spec.check_for_space {
            diags.push(Diagnostic {
                rule: RuleId::A2BufferCapacity,
                severity: Severity::Error,
                location: stream_loc(view, offset, i),
                message: format!(
                    "output capacity {} < eta_out {}: the check-for-space admission \
                     test can never pass, the block is never admitted (deadlock)",
                    s.output_capacity, s.eta_out
                ),
            });
            continue;
        }
        if !s.mu.is_positive() || !throughput_ok[i] {
            continue; // no meaningful throughput-driven sizing
        }
        // Influx during one worst-case round: the producer keeps writing at
        // μ while the round (γ cycles) serves every stream once.
        let influx = (s.mu * gamma_r).ceil().max(0) as u64;
        let sustained_in = s.eta_in + influx;
        if s.input_capacity < sustained_in {
            diags.push(Diagnostic {
                rule: RuleId::A2BufferCapacity,
                severity: Severity::Warning,
                location: stream_loc(view, offset, i),
                message: format!(
                    "input capacity {} < eta_in + ceil(mu*gamma) = {} + {influx}: a \
                     hard producer can overflow (lose samples) while a worst-case \
                     round of gamma = {gamma} cycles is in progress",
                    s.input_capacity, s.eta_in
                ),
            });
        }
        // Exact minimum capacities + Fig. 8 probe (affordable block sizes
        // only: the joint MCM search grows with eta^2).
        if opts.exact_buffers && s.eta_in <= EXACT_BUFFER_ETA_LIMIT && s.eta_in == s.eta_out {
            let rho_p = (s.mu.recip().floor().max(1)) as u64;
            // The search cost grows with the cap, and we only need to decide
            // "configured < minimum": anything beyond ~4 blocks of slack is
            // sufficient in every regime the model covers (double-buffering
            // plus pipeline fill), so cap the search there.
            let cap_limit = 8 * s.eta_in + 64;
            let min_now = minimum_stream_buffers(prob, i, etas, rho_p, 1, cap_limit);
            if let Some(min) = min_now {
                if s.output_capacity < min.alpha3 {
                    diags.push(Diagnostic {
                        rule: RuleId::A2BufferCapacity,
                        severity: Severity::Warning,
                        location: stream_loc(view, offset, i),
                        message: format!(
                            "output capacity {} is below the computed minimum alpha3 = \
                             {} for eta = {}: the consumer-side buffer throttles the \
                             stream below mu under worst-case phasing",
                            s.output_capacity, min.alpha3, s.eta_in
                        ),
                    });
                }
                // Fig. 8 non-monotone trap: would a LARGER block size need
                // LESS buffer? Probe a few bigger etas.
                let eta = etas[i];
                let candidates = [
                    eta + 1,
                    eta + eta.div_ceil(4),
                    eta + eta.div_ceil(2),
                    2 * eta,
                ];
                let mut best: Option<(u64, u64)> = None;
                for &cand in &candidates {
                    if cand <= eta || cand > 2 * EXACT_BUFFER_ETA_LIMIT {
                        continue;
                    }
                    let mut alt = etas.to_vec();
                    alt[i] = cand;
                    if let Some(m) = minimum_stream_buffers(prob, i, &alt, rho_p, 1, cap_limit) {
                        if m.alpha3 < min.alpha3 && best.map(|(_, a)| m.alpha3 < a).unwrap_or(true)
                        {
                            best = Some((cand, m.alpha3));
                        }
                    }
                }
                if let Some((cand, alpha3)) = best {
                    diags.push(Diagnostic {
                        rule: RuleId::A2BufferCapacity,
                        severity: Severity::Warning,
                        location: stream_loc(view, offset, i),
                        message: format!(
                            "non-monotone buffer sizing (Fig. 8): a LARGER block size \
                             eta = {cand} needs only alpha3 = {alpha3} < {} required \
                             at the configured eta = {eta} — growing the block would \
                             shrink the buffer",
                            min.alpha3
                        ),
                    });
                }
            }
        }
    }
}

/// A4 — TDM slot tables: replication-interval consistency (declared period
/// vs Σ budgets) and per-task rate feasibility (`budget/period ≥ 1/interval`).
fn check_tdm(spec: &DeploySpec, diags: &mut Vec<Diagnostic>) {
    for (pi, p) in spec.processors.iter().enumerate() {
        let loc = |task: Option<String>| Location::Processor {
            index: pi,
            name: p.name.clone(),
            task,
        };
        if p.tasks.is_empty() {
            continue;
        }
        if p.tasks.iter().any(|t| t.budget == 0) {
            diags.push(Diagnostic {
                rule: RuleId::A4TdmSchedule,
                severity: Severity::Error,
                location: loc(None),
                message: "every TDM task needs a positive slot budget".into(),
            });
            continue;
        }
        let period: u64 = p.tasks.iter().map(|t| t.budget).sum();
        if let Some(declared) = p.declared_period {
            if declared != period {
                diags.push(Diagnostic {
                    rule: RuleId::A4TdmSchedule,
                    severity: Severity::Error,
                    location: loc(None),
                    message: format!(
                        "replication-interval mismatch: declared period {declared} but \
                         the slot table sums to {period} (the tile replicates every \
                         sum-of-budgets cycles)"
                    ),
                });
            }
        }
        // Actual task-to-slot assignment: windows are contiguous in
        // declaration order, task i starting at the prefix sum of the
        // earlier budgets (how ProcessorTile lays its table out).
        let starts: Vec<u64> = p
            .tasks
            .iter()
            .scan(0u64, |acc, t| {
                let s = *acc;
                *acc += t.budget;
                Some(s)
            })
            .collect();
        for (ti, t) in p.tasks.iter().enumerate() {
            let Some(interval) = t.required_interval else {
                continue;
            };
            if interval == 0 {
                diags.push(Diagnostic {
                    rule: RuleId::A4TdmSchedule,
                    severity: Severity::Error,
                    location: loc(Some(t.name.clone())),
                    message: "required interval must be positive".into(),
                });
                continue;
            }
            // Sustainable rate is budget/period ticks per cycle; the task
            // needs 1/interval.
            if t.budget * interval < period {
                diags.push(Diagnostic {
                    rule: RuleId::A4TdmSchedule,
                    severity: Severity::Error,
                    location: loc(Some(t.name.clone())),
                    message: format!(
                        "slot table infeasible: task needs one tick per {interval} \
                         cycles but gets only {}/{period} of the tile — sustained \
                         rate falls short by a factor of {:.2}",
                        t.budget,
                        period as f64 / (t.budget * interval) as f64
                    ),
                });
            } else if t.budget * interval == period {
                diags.push(Diagnostic {
                    rule: RuleId::A4TdmSchedule,
                    severity: Severity::Warning,
                    location: loc(Some(t.name.clone())),
                    message: format!(
                        "slot table exactly at capacity: budget {} over period \
                         {period} leaves zero slack for a task with interval \
                         {interval} — any added work on this tile misses deadlines",
                        t.budget
                    ),
                });
            } else {
                // Average rate suffices — but the *placement* matters too:
                // the task's window is contiguous, so consecutive run
                // opportunities are up to period − budget + 1 cycles apart.
                let gap = period - t.budget + 1;
                if gap > interval {
                    diags.push(Diagnostic {
                        rule: RuleId::A4TdmSchedule,
                        severity: Severity::Warning,
                        location: loc(Some(t.name.clone())),
                        message: format!(
                            "slot placement bursty: the contiguous window \
                             [{}, {}) leaves a worst-case inter-tick gap of \
                             {gap} > required interval {interval} cycles — the \
                             average rate suffices but the task must buffer \
                             across the rest of the table",
                            starts[ti],
                            starts[ti] + t.budget
                        ),
                    });
                }
            }
        }
        let windows = p
            .tasks
            .iter()
            .zip(&starts)
            .map(|(t, w)| format!("{}@[{w}, {})", t.name, w + t.budget))
            .collect::<Vec<_>>()
            .join(", ");
        diags.push(Diagnostic {
            rule: RuleId::A4TdmSchedule,
            severity: Severity::Info,
            location: loc(None),
            message: format!(
                "TDM slot table: {} task(s), replication interval {period} \
                 cycles; windows {windows}",
                p.tasks.len()
            ),
        });
    }
}

/// A5 — Fig. 9: sharing the chain without the check-for-space admission
/// test exposes every stream to head-of-line blocking by any one consumer.
fn check_space_check(
    spec: &DeploySpec,
    view: &GatewayView,
    offset: usize,
    diags: &mut Vec<Diagnostic>,
) {
    if spec.check_for_space {
        diags.push(Diagnostic {
            rule: RuleId::A5SpaceCheck,
            severity: Severity::Info,
            location: gw_loc(spec, view),
            message: "check-for-space admission test enabled: a block only enters \
                      the chain when its whole output fits (Fig. 9 hazard excluded)"
                .into(),
        });
        return;
    }
    let mut wedged = false;
    for (i, s) in view.streams.iter().enumerate() {
        if s.output_capacity < s.eta_out {
            wedged = true;
            diags.push(Diagnostic {
                rule: RuleId::A5SpaceCheck,
                severity: Severity::Error,
                location: stream_loc(view, offset, i),
                message: format!(
                    "check-for-space disabled and output capacity {} < eta_out {}: \
                     the admitted block can NEVER drain, the exit gateway stalls and \
                     head-of-line-blocks the shared chain forever (Fig. 9)",
                    s.output_capacity, s.eta_out
                ),
            });
        }
    }
    if !wedged && !view.streams.is_empty() {
        diags.push(Diagnostic {
            rule: RuleId::A5SpaceCheck,
            severity: Severity::Warning,
            location: gw_loc(spec, view),
            message: format!(
                "check-for-space admission test disabled: {} stream(s) share the \
                 chain with no guarantee their consumers keep up; a temporarily slow \
                 consumer head-of-line-blocks every other stream and voids the \
                 tau-hat/gamma bounds (Fig. 9, §V-G)",
                view.streams.len()
            ),
        });
    }
}

/// A6 — ring credits: the NI depth is the credit window; the chain's
/// per-sample pace relies on it covering the data+credit round trip.
fn check_credits(spec: &DeploySpec, view: &GatewayView, diags: &mut Vec<Diagnostic>) {
    let c0 = view.c0();
    if spec.ni_depth == 0 {
        diags.push(Diagnostic {
            rule: RuleId::A6CreditWindow,
            severity: Severity::Error,
            location: gw_loc(spec, view),
            message: "NI depth 0: the credit-based flow control starts with zero \
                      credits, no sample can ever be transferred (deadlock)"
                .into(),
        });
        return;
    }
    // Data flits travel src → dst on the data ring and credits return
    // dst → src on the credit ring, so the round trip is twice the hop
    // distance. In the single-gateway shape producer and consumer stations
    // are adjacent (distance 1, the paper's 2-cycle round trip); on the
    // multi-gateway ring the pair's longest segment sets the distance, and
    // the credit window must cover it or the DMA stalls on credits and the
    // effective per-sample pace provably exceeds c0 — stretching every
    // block beyond τ̂, so the multi shape rejects outright.
    let d_max = if spec.is_multi() {
        let layout = spec.ring_layout();
        layout
            .segments(view.index)
            .iter()
            .map(|&(src, dst)| layout.data_hops(src, dst).len() as u64)
            .max()
            .unwrap_or(1)
            .max(1)
    } else {
        1
    };
    let round_trip = 2 * d_max;
    let window = spec.ni_depth as u64 * c0.max(1);
    if window < round_trip {
        diags.push(Diagnostic {
            rule: RuleId::A6CreditWindow,
            severity: if spec.is_multi() {
                Severity::Error
            } else {
                Severity::Warning
            },
            location: gw_loc(spec, view),
            message: format!(
                "NI depth {} with c0 = {c0}: credit window {window} cycles is below \
                 the {round_trip}-cycle data+credit round trip of this pair's \
                 longest ring segment ({d_max} hop(s)) — the DMA stalls on credits \
                 and the effective per-sample pace exceeds c0, stretching blocks \
                 beyond tau-hat (the paper uses depth 2 for adjacent stations)",
                spec.ni_depth
            ),
        });
    } else {
        diags.push(Diagnostic {
            rule: RuleId::A6CreditWindow,
            severity: Severity::Info,
            location: gw_loc(spec, view),
            message: format!(
                "NI depth {} sustains the c0 = {c0} pace (credit window {window} \
                 cycles >= {round_trip}-cycle ring round trip)",
                spec.ni_depth
            ),
        });
    }
}

/// A1 — liveness of the per-stream Fig. 5 CSDF model, checked with the
/// `dataflow` machinery: consistency (repetition vector) and deadlock-free
/// self-timed execution of two blocks.
fn check_liveness(
    spec: &DeploySpec,
    view: &GatewayView,
    offset: usize,
    prob: &SharingProblem,
    etas: &[u64],
    structurally_ok: Vec<bool>,
    diags: &mut Vec<Diagnostic>,
) {
    for (i, s) in view.streams.iter().enumerate() {
        if !structurally_ok[i] {
            continue;
        }
        // In the Fig. 5 model everything is counted in *input* samples;
        // scale the output capacity up-front (conservatively, floor).
        let alpha3_scaled = if s.eta_out <= s.eta_in {
            s.output_capacity * (s.eta_in / s.eta_out)
        } else {
            s.output_capacity
        };
        if s.input_capacity < s.eta_in || alpha3_scaled < s.eta_in {
            diags.push(Diagnostic {
                rule: RuleId::A1Liveness,
                severity: Severity::Error,
                location: stream_loc(view, offset, i),
                message: format!(
                    "the Fig. 5 model deadlocks: a buffer cannot hold one whole block \
                     (alpha0 = {}, alpha3 = {alpha3_scaled} input-samples, eta = {})",
                    s.input_capacity, s.eta_in
                ),
            });
            continue;
        }
        let tau_hat = prob.tau_hat(i, etas[i]);
        let omega = prob.gamma(etas) - tau_hat;
        let rho_p = if s.mu.is_positive() {
            (s.mu.recip().floor().max(1)) as u64
        } else {
            1
        };
        let p = Fig5Params {
            eta: s.eta_in as usize,
            epsilon: view.params.epsilon,
            rho_a: view.params.rho_a,
            delta: view.params.delta,
            reconfig: s.reconfig,
            omega,
            rho_p,
            rho_c: 1,
            alpha0: s.input_capacity,
            alpha3: alpha3_scaled,
            ni_depth: spec.ni_depth as u64,
        };
        let model = fig5_csdf(&p);
        match streamgate_dataflow::simulate(&model.graph, 2) {
            Err(e) => diags.push(Diagnostic {
                rule: RuleId::A1Liveness,
                severity: Severity::Error,
                location: stream_loc(view, offset, i),
                message: format!("the Fig. 5 CSDF model is inconsistent: {e:?}"),
            }),
            Ok(trace) if trace.deadlocked => diags.push(Diagnostic {
                rule: RuleId::A1Liveness,
                severity: Severity::Error,
                location: stream_loc(view, offset, i),
                message: "self-timed execution of the Fig. 5 model deadlocks before \
                          completing two blocks"
                    .into(),
            }),
            Ok(trace) => diags.push(Diagnostic {
                rule: RuleId::A1Liveness,
                severity: Severity::Info,
                location: stream_loc(view, offset, i),
                message: format!(
                    "per-stream CSDF model is consistent and live: two blocks \
                     ({} consumer firings) complete by t = {}",
                    trace.firing_count(model.v_c),
                    trace.end_time
                ),
            }),
        }
    }
}

/// A8 — system round feasibility (Eq. 3–4 at system scope). Returns the
/// per-stream system round bound `γ_s`, in the flat
/// [`DeploySpec::all_streams`] order.
///
/// Within one gateway, γ is the familiar Σ τ̂ over its streams (Eq. 4).
/// When several gateways *share one physical chain* (Fig. 10), a gateway's
/// round additionally waits for the other pairs' claims. The kernel-
/// presence mutex grants the chain to waiting pairs round-robin, so
/// between the `n_g` claims of gateway `g`'s round (plus one for initial
/// phasing), every co-owning gateway `h` interposes at most `n_g + 1`
/// blocks — and at most `⌈(n_g + 1)/n_h⌉` of its own rounds. The
/// interference bound takes the cheaper of the two; the *naive* γ = Σ over
/// all group streams would be unsound, because a pair with fewer streams
/// claims the chain more often per own-round than the longer pair does.
fn check_system_round(
    spec: &DeploySpec,
    views: &[GatewayView],
    // τ̂ per view per local stream (Eq. 2 with the view's own c0), from
    // the cached per-pair facts.
    taus: &[&[u64]],
    diags: &mut Vec<Diagnostic>,
) -> Vec<u64> {
    let (gamma_sys, gamma_local) = system_round_bounds_from_taus(views, taus);

    // Group utilisation: each admitted block claims the shared chain for
    // τ̂ cycles per η samples, so Σ μ·τ̂/η over the group is the fraction
    // of time the chain is claimed — above 1 no schedule exists.
    let mut group_checked = Vec::new();
    for v in views {
        if v.group != v.index || group_checked.contains(&v.group) {
            continue;
        }
        group_checked.push(v.group);
        let members: Vec<_> = views.iter().filter(|w| w.group == v.group).collect();
        if members.iter().all(|w| w.streams.is_empty())
            || members
                .iter()
                .any(|w| w.streams.iter().any(|s| !s.mu.is_positive()))
        {
            continue;
        }
        let mut util = Rational::from_int(0);
        for w in &members {
            for (i, s) in w.streams.iter().enumerate() {
                util += s.mu * Rational::new(taus[w.index][i] as i128, s.eta_in as i128);
            }
        }
        let shared = members.len() > 1;
        if util > Rational::ONE {
            diags.push(Diagnostic {
                rule: RuleId::A8SystemRound,
                severity: Severity::Error,
                location: gw_loc(spec, v),
                message: format!(
                    "chain over-committed: the group's blocks claim the shared \
                     chain for sum(mu*tau-hat/eta) = {}/{} > 1 of the time — no \
                     round-robin schedule can meet every rate (Eq. 3-4)",
                    util.numer(),
                    util.denom()
                ),
            });
        } else if util == Rational::ONE && shared {
            diags.push(Diagnostic {
                rule: RuleId::A8SystemRound,
                severity: Severity::Warning,
                location: gw_loc(spec, v),
                message: "chain claimed 100% of the time across the sharing \
                          pairs: zero slack for reconfiguration phasing"
                    .into(),
            });
        }
    }

    // Per-stream Eq. 5 at system scope — only where the *system* round is
    // strictly longer than the pair-local one (A3 already checked η/γ ≥ μ
    // for the local round).
    for (gi, (v, s)) in views
        .iter()
        .flat_map(|v| v.streams.iter().map(move |s| (v, s)))
        .enumerate()
    {
        if !s.mu.is_positive() || gamma_sys[gi] == gamma_local[gi] {
            continue;
        }
        let lhs = Rational::new(s.eta_in as i128, gamma_sys[gi] as i128);
        if lhs < s.mu {
            diags.push(Diagnostic {
                rule: RuleId::A8SystemRound,
                severity: Severity::Error,
                location: Location::Stream {
                    index: gi,
                    name: s.name.clone(),
                },
                message: format!(
                    "throughput infeasible at system scope (Eq. 5): eta/gamma_s \
                     = {}/{} < mu = {} once the co-owning pairs' claims on the \
                     shared chain are charged to {}'s round",
                    s.eta_in, gamma_sys[gi], s.mu, v.name
                ),
            });
        }
    }

    if !gamma_sys.is_empty() {
        diags.push(Diagnostic {
            rule: RuleId::A8SystemRound,
            severity: Severity::Info,
            location: Location::Deployment,
            message: format!(
                "system round bounds: max gamma_s = {} cycles over {} stream(s) \
                 on {} gateway pair(s)",
                gamma_sys.iter().max().unwrap(),
                gamma_sys.len(),
                views.len()
            ),
        });
    }
    gamma_sys
}

/// The Eq. 3–4 system round bounds per flat stream — gateway-local Σ τ̂
/// plus the Fig. 10 shared-chain interference term — for an arbitrary τ̂
/// assignment. Shared by rule A8 (committed τ̂) and rule A13
/// (worst-of-modes τ̂ during a transition window). Returns
/// `(gamma_sys, gamma_local)`.
fn system_round_bounds_from_taus(views: &[GatewayView], taus: &[&[u64]]) -> (Vec<u64>, Vec<u64>) {
    let mut gamma_sys = Vec::new();
    let mut gamma_local = Vec::new();
    for v in views {
        let own: u64 = taus[v.index].iter().sum();
        let n_g = v.streams.len() as u64;
        let mut interference = 0u64;
        for w in views {
            if w.index == v.index || w.group != v.group || w.streams.is_empty() {
                continue;
            }
            let claims = n_g + 1;
            let max_t = *taus[w.index].iter().max().unwrap();
            let sum_t: u64 = taus[w.index].iter().sum();
            let n_h = w.streams.len() as u64;
            interference += (claims * max_t).min(claims.div_ceil(n_h) * sum_t);
        }
        for _ in v.streams {
            gamma_sys.push(own + interference);
            gamma_local.push(own);
        }
    }
    (gamma_sys, gamma_local)
}

/// A7 — cross-gateway ring contention on the [`DeploySpec::ring_layout`]
/// placement. Every stream loads each data-ring hop its block path
/// crosses, and mirrors one credit per data flit on the reverse-rotation
/// credit ring. Hops before the first accelerator carry the full required
/// rate μ; hops after it carry at least μ·η_out/η_in (the decimation may
/// happen at any stage, so the post-accelerator floor is the provable
/// minimum while μ stays the ceiling). Required load above one flit/cycle
/// on any hop is a provable failure; a ceiling at or above one is a
/// warning.
fn check_ring(
    spec: &DeploySpec,
    views: &[GatewayView],
    contribs: &[RingContrib],
    diags: &mut Vec<Diagnostic>,
) {
    if views.iter().all(|v| v.chain.is_empty())
        || views.iter().any(|v| {
            v.streams
                .iter()
                .any(|s| !s.mu.is_positive() || s.eta_in == 0)
        })
    {
        return; // structural errors already reported
    }
    let layout = spec.ring_layout();
    let zero = Rational::from_int(0);
    let mut data_min = vec![zero; layout.nodes];
    let mut data_max = vec![zero; layout.nodes];
    let mut credit_min = vec![zero; layout.nodes];
    let mut credit_max = vec![zero; layout.nodes];
    // Which gateways cross each data hop (for diagnostics + NI check).
    let mut hop_users: Vec<Vec<usize>> = vec![Vec::new(); layout.nodes];

    // Sum the cached per-pair contributions (view order, exact rationals —
    // identical to walking every stream of every pair directly).
    for v in views {
        let c = &contribs[v.index];
        for h in 0..layout.nodes {
            data_min[h] += c.data_min[h];
            data_max[h] += c.data_max[h];
            credit_min[h] += c.credit_min[h];
            credit_max[h] += c.credit_max[h];
        }
        for &h in &c.hops {
            hop_users[h].push(v.index);
        }
    }

    let mut worst = Rational::from_int(0);
    let mut worst_hop = 0;
    let mut failed = false;
    for (ring, (min_loads, max_loads)) in [
        ("data", (&data_min, &data_max)),
        ("credit", (&credit_min, &credit_max)),
    ] {
        for h in 0..layout.nodes {
            if max_loads[h] > worst {
                worst = max_loads[h];
                worst_hop = h;
            }
            if min_loads[h] > Rational::ONE {
                failed = true;
                diags.push(Diagnostic {
                    rule: RuleId::A7RingContention,
                    severity: Severity::Error,
                    location: Location::Deployment,
                    message: format!(
                        "{ring}-ring hop {h} over-committed: required sustained \
                         load {}/{} flits/cycle > 1 from gateway(s) {} — the hop \
                         forwards one flit per cycle, so some stream must miss \
                         its rate",
                        min_loads[h].numer(),
                        min_loads[h].denom(),
                        hop_users[h]
                            .iter()
                            .map(|&g| views[g].name.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            } else if max_loads[h] >= Rational::ONE {
                diags.push(Diagnostic {
                    rule: RuleId::A7RingContention,
                    severity: Severity::Warning,
                    location: Location::Deployment,
                    message: format!(
                        "{ring}-ring hop {h} may saturate: load ceiling {}/{} \
                         flits/cycle reaches the one-flit/cycle hop capacity \
                         (the floor stays below 1, so feasibility depends on \
                         where the chains decimate)",
                        max_loads[h].numer(),
                        max_loads[h].denom(),
                    ),
                });
            }
        }
    }

    // Credit-window interference: a pair's ni_depth credit window covers
    // the 2-cycle adjacent-station round trip (A6), but every *other* pair
    // whose traffic shares a hop of the path can delay each credit by a
    // slot, shrinking the effective window.
    for v in views {
        if v.streams.is_empty() || v.chain.is_empty() {
            continue;
        }
        let mut interferers: Vec<usize> = Vec::new();
        let mut d_max = 1u64;
        for &(src, dst) in &layout.segments(v.index) {
            let hops = layout.data_hops(src, dst);
            d_max = d_max.max(hops.len() as u64);
            for h in hops {
                for &u in &hop_users[h] {
                    if u != v.index && !interferers.contains(&u) {
                        interferers.push(u);
                    }
                }
            }
        }
        if !interferers.is_empty()
            && (spec.ni_depth as u64) * v.c0() < 2 * d_max + interferers.len() as u64
        {
            diags.push(Diagnostic {
                rule: RuleId::A7RingContention,
                severity: Severity::Warning,
                location: gw_loc(spec, v),
                message: format!(
                    "credit window tight under contention: ni_depth {} x c0 {} \
                     < {}-cycle round trip + {} interfering pair(s) — per-sample \
                     pace can stretch beyond c0 while other streams cross this \
                     pair's path",
                    spec.ni_depth,
                    v.c0(),
                    2 * d_max,
                    interferers.len()
                ),
            });
        }
    }

    if !failed {
        diags.push(Diagnostic {
            rule: RuleId::A7RingContention,
            severity: Severity::Info,
            location: Location::Deployment,
            message: format!(
                "ring contention bounded: worst hop load ceiling {}/{} \
                 flits/cycle (hop {worst_hop}) across {} station(s)",
                worst.numer(),
                worst.denom(),
                layout.nodes
            ),
        });
    }
}

/// A9 — configuration-bus TDM slot tables across gateways: every declared
/// slot must fit the period, not overlap any other pair's slot, and be
/// long enough for the pair's largest reconfiguration window R_s.
fn check_config_bus(spec: &DeploySpec, views: &[GatewayView], diags: &mut Vec<Diagnostic>) {
    let slots: Vec<(usize, u64, u64)> = views
        .iter()
        .filter_map(|v| v.config_slot.map(|(o, l)| (v.index, o, l)))
        .collect();
    let Some(period) = spec.config_bus_period else {
        if !slots.is_empty() {
            diags.push(Diagnostic {
                rule: RuleId::A9SlotConflict,
                severity: Severity::Warning,
                location: Location::Deployment,
                message: format!(
                    "{} gateway(s) declare config_slot but the spec has no \
                     config_bus_period: the slots cannot be placed in a TDM frame",
                    slots.len()
                ),
            });
        }
        return;
    };
    if period == 0 {
        diags.push(Diagnostic {
            rule: RuleId::A9SlotConflict,
            severity: Severity::Error,
            location: Location::Deployment,
            message: "config_bus_period must be positive".into(),
        });
        return;
    }
    let mut structurally_ok = true;
    for &(g, off, len) in &slots {
        let v = &views[g];
        if len == 0 {
            structurally_ok = false;
            diags.push(Diagnostic {
                rule: RuleId::A9SlotConflict,
                severity: Severity::Error,
                location: gw_loc(spec, v),
                message: "config_slot length must be positive".into(),
            });
            continue;
        }
        if off + len > period {
            structurally_ok = false;
            diags.push(Diagnostic {
                rule: RuleId::A9SlotConflict,
                severity: Severity::Error,
                location: gw_loc(spec, v),
                message: format!(
                    "config_slot [{off}, {}) exceeds the bus period {period}",
                    off + len
                ),
            });
            continue;
        }
        let max_r = v.streams.iter().map(|s| s.reconfig).max().unwrap_or(0);
        if max_r > len {
            diags.push(Diagnostic {
                rule: RuleId::A9SlotConflict,
                severity: Severity::Error,
                location: gw_loc(spec, v),
                message: format!(
                    "reconfiguration window does not fit its bus slot: max R_s \
                     = {max_r} > slot length {len} — every reconfiguration of \
                     this pair overruns into the next pair's slot",
                ),
            });
        }
    }
    if structurally_ok {
        let mut sorted = slots.clone();
        sorted.sort_by_key(|&(_, o, _)| o);
        for pair in sorted.windows(2) {
            let (ga, oa, la) = pair[0];
            let (gb, ob, _) = pair[1];
            if oa + la > ob {
                diags.push(Diagnostic {
                    rule: RuleId::A9SlotConflict,
                    severity: Severity::Error,
                    location: Location::Deployment,
                    message: format!(
                        "config slots overlap: {}'s [{oa}, {}) collides with \
                         {}'s slot starting at {ob} — two gateways would drive \
                         the shared configuration bus at once",
                        views[ga].name,
                        oa + la,
                        views[gb].name
                    ),
                });
            }
        }
    }
    let holders: Vec<usize> = slots.iter().map(|&(g, _, _)| g).collect();
    for v in views {
        if !holders.contains(&v.index) && !v.streams.is_empty() {
            diags.push(Diagnostic {
                rule: RuleId::A9SlotConflict,
                severity: Severity::Warning,
                location: gw_loc(spec, v),
                message: "no config_slot on the shared configuration bus: this \
                          pair's reconfigurations are unscheduled and can \
                          collide with any other pair's"
                    .into(),
            });
        }
    }
    let covered: u64 = slots.iter().map(|&(_, _, l)| l).sum();
    if structurally_ok && covered < period {
        diags.push(Diagnostic {
            rule: RuleId::A9SlotConflict,
            severity: Severity::Info,
            location: Location::Deployment,
            message: format!(
                "config bus: {} slot(s) cover {covered}/{period} cycles of the \
                 TDM frame ({} orphaned)",
                slots.len(),
                period - covered
            ),
        });
    } else if structurally_ok {
        diags.push(Diagnostic {
            rule: RuleId::A9SlotConflict,
            severity: Severity::Info,
            location: Location::Deployment,
            message: format!(
                "config bus: {} slot(s) fully tile the {period}-cycle TDM frame",
                slots.len()
            ),
        });
    }
}

/// A10 — end-to-end latency composition through the Fig. 7 single-actor
/// SDF abstraction: a stream's block behaves like one actor that waits at
/// most `Ω̂_s = γ_s − τ̂_s` and then executes in `τ̂_s`. The upper bound
/// `⌈(η−1)/μ⌉ + γ_s` (accumulate a block at rate μ, then wait + execute)
/// is conservative under the-earlier-the-better refinement: the platform
/// can only produce samples *earlier* than the abstraction, never later.
/// The lower bound `⌈(η−1)/μ⌉ + R + (η−1)·ε` holds even on an idle chain.
fn check_latency(
    _spec: &DeploySpec,
    views: &[GatewayView],
    gamma_sys: &[u64],
    diags: &mut Vec<Diagnostic>,
) {
    for (gi, (v, s)) in views
        .iter()
        .flat_map(|v| v.streams.iter().map(move |s| (v, s)))
        .enumerate()
    {
        let Some(budget) = s.max_latency else {
            continue;
        };
        if !s.mu.is_positive() || s.eta_in == 0 {
            continue; // structural errors already reported
        }
        let fill = (s.mu.recip() * Rational::from_int(s.eta_in as i128 - 1))
            .ceil()
            .max(0) as u64;
        let lower = fill + s.reconfig + (s.eta_in - 1) * v.params.epsilon;
        let upper = fill.saturating_add(gamma_sys[gi]);
        let loc = Location::Stream {
            index: gi,
            name: s.name.clone(),
        };
        if lower > budget {
            diags.push(Diagnostic {
                rule: RuleId::A10EndToEndLatency,
                severity: Severity::Error,
                location: loc,
                message: format!(
                    "latency budget impossible: even on an idle chain the last \
                     output sample needs >= {lower} cycles (fill {fill} + R {} \
                     + DMA {}) > max_latency {budget}",
                    s.reconfig,
                    (s.eta_in - 1) * v.params.epsilon
                ),
            });
        } else if upper > budget {
            diags.push(Diagnostic {
                rule: RuleId::A10EndToEndLatency,
                severity: Severity::Warning,
                location: loc,
                message: format!(
                    "latency budget not guaranteed: Fig. 7 worst case fill + \
                     gamma_s = {fill} + {} = {upper} > max_latency {budget} \
                     (admission can wait a whole round behind the other streams)",
                    gamma_sys[gi]
                ),
            });
        } else {
            diags.push(Diagnostic {
                rule: RuleId::A10EndToEndLatency,
                severity: Severity::Info,
                location: loc,
                message: format!(
                    "latency guaranteed: fill + gamma_s = {fill} + {} = {upper} \
                     <= max_latency {budget} cycles (Fig. 7 single-actor bound)",
                    gamma_sys[gi]
                ),
            });
        }
    }
}

/// Fusion-eligibility diagnostics: the static part of the span engine's
/// per-gateway `fuse_ok` decision, reported so the "all-or-nothing
/// fusion" behaviour is visible instead of silent. The engine fuses a
/// gateway's chain hot loop into closed-form interval execution only when
/// every chain segment is unit-distance on both rings and the gateway's
/// stations are disjoint from every other chain group's; delivery-event
/// logging additionally disables fusion at run time, which a static spec
/// cannot see — the diagnostic says so.
fn check_fusion(spec: &DeploySpec, views: &[GatewayView], diags: &mut Vec<Diagnostic>) {
    if !spec.is_multi() || !spec.gateway_structure_errors().is_empty() {
        return;
    }
    let layout = spec.ring_layout();
    let stations: Vec<Vec<usize>> = views
        .iter()
        .map(|v| {
            let mut s = layout.chain_nodes[v.index].clone();
            s.push(layout.entries[v.index]);
            s.push(layout.exits[v.index]);
            s
        })
        .collect();
    for v in views {
        let mut reason = None;
        if v.chain.is_empty() {
            reason = Some("the chain is empty".to_string());
        }
        if reason.is_none() {
            for &(src, dst) in &layout.segments(v.index) {
                let d = layout.data_hops(src, dst).len();
                let c = layout.credit_hops(src, dst).len();
                if d != 1 || c != 1 {
                    reason = Some(format!(
                        "mixed-distance chain: segment {src} -> {dst} spans {d} data / \
                         {c} credit hop(s), not 1/1"
                    ));
                    break;
                }
            }
        }
        if reason.is_none() {
            for w in views {
                if w.index == v.index || w.group == v.group {
                    continue;
                }
                if stations[v.index]
                    .iter()
                    .any(|s| stations[w.index].contains(s))
                {
                    reason = Some(format!("ring stations overlap gateway '{}'", w.name));
                    break;
                }
            }
        }
        diags.push(Diagnostic {
            rule: RuleId::A7RingContention,
            severity: Severity::Info,
            location: gw_loc(spec, v),
            message: match reason {
                None => "span-engine chain fusion statically eligible (fuse_ok): every \
                         chain segment is unit-distance and the stations are disjoint \
                         from other chain groups (delivery-event logging still disables \
                         fusion at run time)"
                    .into(),
                Some(r) => format!("span-engine chain fusion statically ineligible: {r}"),
            },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChainStage, ProcessorDeploy, StreamDeploy, TaskDeploy};

    fn small_spec() -> DeploySpec {
        DeploySpec {
            name: "t".into(),
            chain: vec![ChainStage {
                name: "acc".into(),
                rho: 1,
            }],
            epsilon: 4,
            delta: 1,
            ni_depth: 2,
            check_for_space: true,
            streams: vec![StreamDeploy {
                name: "s0".into(),
                mu: Rational::new(1, 40),
                eta_in: 8,
                eta_out: 8,
                reconfig: 20,
                input_capacity: 32,
                output_capacity: 32,
                max_latency: None,
            }],
            processors: vec![],
            gateways: vec![],
            config_bus_period: None,
            station_map: None,
            modes: vec![],
        }
    }

    #[test]
    fn clean_spec_is_accepted_with_bounds() {
        let r = analyze(&small_spec());
        assert!(r.is_accepted(), "{}", r.render_text());
        assert!(r.has(RuleId::A1Liveness, Severity::Info));
        assert!(r.has(RuleId::A3Throughput, Severity::Info));
        assert_eq!(r.bounds.len(), 1);
        // τ̂ = 20 + 10·4 = 60, γ = τ̂ (single stream), Ω̂ = 0.
        assert_eq!(r.bounds[0].tau_hat, 60);
        assert_eq!(r.gamma, 60);
        assert_eq!(r.bounds[0].omega_hat, 0);
    }

    #[test]
    fn undersized_input_is_a2_error() {
        let mut s = small_spec();
        s.streams[0].input_capacity = 7;
        let r = analyze(&s);
        assert!(!r.is_accepted());
        assert!(r.has(RuleId::A2BufferCapacity, Severity::Error));
        // The model-level rule agrees: the Fig. 5 graph deadlocks.
        assert!(r.has(RuleId::A1Liveness, Severity::Error));
    }

    #[test]
    fn undersized_output_with_check_is_a2_error() {
        let mut s = small_spec();
        s.streams[0].output_capacity = 4;
        let r = analyze(&s);
        assert!(r.has(RuleId::A2BufferCapacity, Severity::Error));
    }

    #[test]
    fn oversubscribed_utilisation_is_a3_error() {
        let mut s = small_spec();
        s.streams[0].mu = Rational::new(1, 3); // c0 = 4 > 3 cycles/sample
        let r = analyze(&s);
        assert!(r.has(RuleId::A3Throughput, Severity::Error));
        assert!(!r.is_accepted());
    }

    #[test]
    fn eta_below_eq5_minimum_is_a3_error() {
        let mut s = small_spec();
        // γ(η=2) = 20 + 4·4 = 36; μ·γ = 36/20 > 2 = η → infeasible.
        s.streams[0].eta_in = 2;
        s.streams[0].eta_out = 2;
        s.streams[0].mu = Rational::new(1, 10);
        let r = analyze(&s);
        assert!(
            r.has(RuleId::A3Throughput, Severity::Error),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn missing_space_check_warns_and_errors_on_undersized_output() {
        let mut s = small_spec();
        s.check_for_space = false;
        let r = analyze(&s);
        assert!(r.has(RuleId::A5SpaceCheck, Severity::Warning));
        assert!(r.is_accepted());
        s.streams[0].output_capacity = 4;
        let r = analyze(&s);
        assert!(r.has(RuleId::A5SpaceCheck, Severity::Error));
    }

    #[test]
    fn tdm_rules_fire() {
        let mut s = small_spec();
        s.processors = vec![ProcessorDeploy {
            name: "FE".into(),
            declared_period: Some(5),
            tasks: vec![
                TaskDeploy {
                    name: "src".into(),
                    budget: 1,
                    required_interval: Some(3),
                },
                TaskDeploy {
                    name: "other".into(),
                    budget: 3,
                    required_interval: None,
                },
            ],
        }];
        let r = analyze(&s);
        // Declared period 5 ≠ Σ budgets 4 → Error; src needs 1/3 > 1/4 → Error.
        let a4_errors: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.rule == RuleId::A4TdmSchedule && d.severity == Severity::Error)
            .collect();
        assert_eq!(a4_errors.len(), 2, "{}", r.render_text());
    }

    #[test]
    fn ni_depth_rules_fire() {
        let mut s = small_spec();
        s.ni_depth = 0;
        let r = analyze(&s);
        assert!(r.has(RuleId::A6CreditWindow, Severity::Error));
        s.ni_depth = 1;
        s.epsilon = 1;
        s.chain[0].rho = 1;
        s.delta = 1;
        s.streams[0].mu = Rational::new(1, 40);
        let r = analyze(&s);
        assert!(
            r.has(RuleId::A6CreditWindow, Severity::Warning),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn fig8_nonmonotone_trap_warns() {
        // The Fig. 8 regime: μ = 1/8, c0 = 5, R = 6. η = 6 is the smallest
        // Eq. 5-feasible block size (tight → double-buffered α₃), while
        // larger blocks have slack and need less (the crossover of §V-E).
        let s = DeploySpec {
            name: "fig8".into(),
            chain: vec![ChainStage {
                name: "acc".into(),
                rho: 5,
            }],
            epsilon: 5,
            delta: 1,
            ni_depth: 2,
            check_for_space: true,
            streams: vec![StreamDeploy {
                name: "s".into(),
                mu: Rational::new(1, 8),
                eta_in: 6,
                eta_out: 6,
                reconfig: 6,
                input_capacity: 64,
                output_capacity: 64,
                max_latency: None,
            }],
            processors: vec![],
            gateways: vec![],
            config_bus_period: None,
            station_map: None,
            modes: vec![],
        };
        let r = analyze(&s);
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.rule == RuleId::A2BufferCapacity && d.message.contains("non-monotone")),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn fig9_presets_match_expectations() {
        // Skip the exact buffer search here: the findings asserted below are
        // all capacity-floor / space-check results, which don't need it.
        let fast = AnalysisOptions {
            exact_buffers: false,
        };
        let good = analyze_with(&DeploySpec::fig9(true), &fast);
        // s1's 4-slot output cannot hold η_out = 16 → A2 Error even with
        // the check (the block is simply never admitted).
        assert!(good.has(RuleId::A2BufferCapacity, Severity::Error));
        let bad = analyze_with(&DeploySpec::fig9(false), &fast);
        assert!(bad.has(RuleId::A5SpaceCheck, Severity::Error));
    }

    #[test]
    fn fig6_and_pal_presets_are_accepted() {
        let r = analyze(&DeploySpec::fig6());
        assert!(r.is_accepted(), "{}", r.render_text());
        let r = analyze(&DeploySpec::pal_scaled());
        assert!(r.is_accepted(), "{}", r.render_text());
        assert_eq!(r.bounds.len(), 4);
    }
    /// Satellite: A4 models the FE processor's *actual* task-to-slot
    /// assignment. Pinned regression for the PAL preset's slot table.
    #[test]
    fn pal_fe_slot_windows_pinned() {
        let r = analyze(&DeploySpec::pal_scaled());
        let info = r
            .diagnostics
            .iter()
            .find(|d| {
                d.rule == RuleId::A4TdmSchedule
                    && matches!(&d.location, Location::Processor { index: 0, .. })
            })
            .expect("FE processor A4 finding");
        assert_eq!(info.severity, Severity::Info);
        assert_eq!(
            info.message,
            "TDM slot table: 1 task(s), replication interval 1 cycles; \
             windows pal-front-end@[0, 1)"
        );
    }

    #[test]
    fn tdm_bursty_window_warns() {
        // src: budget 2 of period 5, interval 3. Average rate 2/5 > 1/3 is
        // fine, but the contiguous window leaves a 5−2+1 = 4-cycle gap.
        let mut s = small_spec();
        s.processors = vec![ProcessorDeploy {
            name: "FE".into(),
            declared_period: Some(5),
            tasks: vec![
                TaskDeploy {
                    name: "src".into(),
                    budget: 2,
                    required_interval: Some(3),
                },
                TaskDeploy {
                    name: "other".into(),
                    budget: 3,
                    required_interval: None,
                },
            ],
        }];
        let r = analyze(&s);
        let warn = r
            .diagnostics
            .iter()
            .find(|d| d.rule == RuleId::A4TdmSchedule && d.severity == Severity::Warning)
            .expect("bursty placement warning");
        assert!(
            warn.message.contains("slot placement bursty"),
            "{}",
            warn.message
        );
        assert!(warn.message.contains("gap of 4 > required interval 3"));
        // No A4 error: the schedule is feasible on average.
        assert!(!r.has(RuleId::A4TdmSchedule, Severity::Error));
    }

    /// Two single-stream pairs on their own chains but one ring, each
    /// pushing μ = 2/3 flits/cycle through the shared middle hops: every
    /// pair is locally feasible (c0 = 1, η/γ = 8/11 ≥ 2/3) yet hop 1
    /// carries 4/3 > 1 — only the system-scope A7 can see it.
    fn contended_ring_spec(mu: Rational) -> DeploySpec {
        let gw = |n: usize| crate::spec::GatewayDeploy {
            name: format!("gw{n}"),
            chain: vec![ChainStage {
                name: format!("acc{n}"),
                rho: 1,
            }],
            shares_chain_with: None,
            streams: vec![StreamDeploy {
                name: format!("s{n}"),
                mu,
                eta_in: 8,
                eta_out: 8,
                reconfig: 1,
                input_capacity: 64,
                output_capacity: 64,
                max_latency: None,
            }],
            config_slot: None,
        };
        DeploySpec {
            name: "contended".into(),
            chain: vec![],
            epsilon: 1,
            delta: 1,
            // Deep enough for the 2-hop segments of the 6-station ring
            // (layout-aware A6) plus one interferer.
            ni_depth: 6,
            check_for_space: true,
            streams: vec![],
            processors: vec![],
            gateways: vec![gw(0), gw(1)],
            config_bus_period: None,
            station_map: None,
            modes: vec![],
        }
    }

    #[test]
    fn ring_overcommit_is_a7_error() {
        let r = analyze(&contended_ring_spec(Rational::new(2, 3)));
        let err = r
            .diagnostics
            .iter()
            .find(|d| d.rule == RuleId::A7RingContention && d.severity == Severity::Error)
            .expect("A7 error");
        assert!(err.message.contains("over-committed"), "{}", err.message);
        assert!(err.message.contains("gw0") && err.message.contains("gw1"));
        assert!(!r.is_accepted());
        // Each pair in isolation is clean: no A3 errors.
        assert!(!r.has(RuleId::A3Throughput, Severity::Error));
    }

    #[test]
    fn ring_at_capacity_is_a7_warning_and_low_load_is_info() {
        // μ = 1/2 each: shared-hop ceiling exactly 1 → Warning, not Error.
        let r = analyze(&contended_ring_spec(Rational::new(1, 2)));
        assert!(r.has(RuleId::A7RingContention, Severity::Warning));
        assert!(!r.has(RuleId::A7RingContention, Severity::Error));
        // μ = 1/8 each: comfortably below capacity → Info only.
        let r = analyze(&contended_ring_spec(Rational::new(1, 8)));
        assert!(r.has(RuleId::A7RingContention, Severity::Info));
        assert!(!r.has(RuleId::A7RingContention, Severity::Warning));
        assert!(r.is_accepted(), "{}", r.render_text());
    }

    /// Two pairs sharing ONE physical chain, each locally feasible, but
    /// the chain is claimed 2·(μ·τ̂/η) = 11/8 > 1 of the time.
    fn shared_chain_spec(mu: Rational) -> DeploySpec {
        let mut s = contended_ring_spec(mu);
        s.name = "shared".into();
        s.gateways[1].chain = vec![];
        s.gateways[1].shares_chain_with = Some(0);
        s
    }

    #[test]
    fn shared_chain_overcommit_is_a8_error() {
        let r = analyze(&shared_chain_spec(Rational::new(1, 2)));
        let err = r
            .diagnostics
            .iter()
            .find(|d| d.rule == RuleId::A8SystemRound && d.severity == Severity::Error)
            .expect("A8 error");
        assert!(err.message.contains("over-committed"), "{}", err.message);
        assert!(!r.is_accepted());
        assert!(!r.has(RuleId::A3Throughput, Severity::Error));
    }

    #[test]
    fn shared_chain_interference_stretches_gamma_and_bounds() {
        // μ = 1/3: group utilisation 2·(1/3 · 11/8) = 11/12 is fine, but
        // γ_s grows from the pair-local 11 to 11 + min(2·11, 2·11) = 33,
        // and 8/33 < 1/3 → the system-scope Eq. 5 rejects what A3
        // accepted locally.
        let r = analyze(&shared_chain_spec(Rational::new(1, 3)));
        assert_eq!(r.gamma, 33, "{}", r.render_text());
        assert_eq!(r.bounds[0].tau_hat, 11);
        assert_eq!(r.bounds[0].omega_hat, 33 - 11);
        assert!(r.has(RuleId::A8SystemRound, Severity::Error));
        assert!(!r.has(RuleId::A3Throughput, Severity::Error));
        // Slow the streams down: interference still shapes Ω̂ but Eq. 5
        // holds and the deployment is accepted.
        let r = analyze(&shared_chain_spec(Rational::new(1, 40)));
        assert!(r.is_accepted(), "{}", r.render_text());
        assert_eq!(r.gamma, 33);
    }

    #[test]
    fn config_bus_conflicts_are_a9_errors() {
        let mut s = DeploySpec::pal2();
        // Overlap: back slot starts inside the front slot.
        s.gateways[1].config_slot = Some((100, 200));
        let r = analyze(&s);
        let err = r
            .diagnostics
            .iter()
            .find(|d| d.rule == RuleId::A9SlotConflict && d.severity == Severity::Error)
            .expect("A9 overlap error");
        assert!(err.message.contains("overlap"), "{}", err.message);
        assert!(!r.is_accepted());

        // Slot too short for the pair's reconfiguration window R = 200.
        let mut s = DeploySpec::pal2();
        s.gateways[0].config_slot = Some((0, 100));
        let r = analyze(&s);
        assert!(r.has(RuleId::A9SlotConflict, Severity::Error));

        // Slot past the end of the TDM frame.
        let mut s = DeploySpec::pal2();
        s.gateways[1].config_slot = Some((300, 200));
        let r = analyze(&s);
        assert!(r.has(RuleId::A9SlotConflict, Severity::Error));

        // Slots without a period: warning, not error.
        let mut s = DeploySpec::pal2();
        s.config_bus_period = None;
        let r = analyze(&s);
        assert!(r.has(RuleId::A9SlotConflict, Severity::Warning));
        assert!(!r.has(RuleId::A9SlotConflict, Severity::Error));
    }

    #[test]
    fn latency_budgets_split_into_a10_severities() {
        // pal2 front streams: lower bound 32400, upper bound 42275 cycles.
        let mut s = DeploySpec::pal2();
        s.gateways[0].streams[0].max_latency = Some(30_000); // < lower
        s.gateways[0].streams[1].max_latency = Some(35_000); // between
        let r = analyze(&s);
        let a10 = |name: &str| {
            r.diagnostics
                .iter()
                .find(|d| {
                    d.rule == RuleId::A10EndToEndLatency
                        && matches!(&d.location, Location::Stream { name: n, .. } if n == name)
                })
                .unwrap()
                .severity
        };
        assert_eq!(a10("ch1-front"), Severity::Error);
        assert_eq!(a10("ch2-front"), Severity::Warning);
        assert_eq!(a10("ch1-back"), Severity::Info);
        assert!(!r.is_accepted());
    }

    /// The Fig. 10 deployment: 4 logical accelerator uses on 2 physical
    /// accelerators, one ring — must be accepted end to end.
    #[test]
    fn pal2_preset_is_accepted() {
        let r = analyze(&DeploySpec::pal2());
        assert!(r.is_accepted(), "{}", r.render_text());
        assert_eq!(r.bounds.len(), 4);
        assert_eq!(r.gamma, 19_660);
        for rule in [
            RuleId::A7RingContention,
            RuleId::A8SystemRound,
            RuleId::A9SlotConflict,
            RuleId::A10EndToEndLatency,
        ] {
            assert!(r.has(rule, Severity::Info), "missing {rule:?} info");
        }
        // Both pairs get their own A3/A6 findings under their own name.
        let gw_findings = r
            .diagnostics
            .iter()
            .filter(|d| matches!(&d.location, Location::Gateway { .. }))
            .count();
        assert!(gw_findings >= 4, "{}", r.render_text());
    }
}
