//! The analysis rules A1–A6 and the [`analyze`] entry point.
//!
//! Every rule checks a compile-time property the paper derives for the
//! gateway architecture (see DESIGN.md §8 for the rule ↔ equation/figure
//! map). None of them executes a simulated platform cycle: A1 runs the
//! *analytical* self-timed execution of the per-stream CSDF model (the
//! `dataflow` machinery of Fig. 5), everything else is arithmetic over the
//! deployment description.

use crate::diag::{Diagnostic, Location, Report, RuleId, Severity, StreamBounds};
use crate::spec::DeploySpec;
use streamgate_core::{fig5_csdf, minimum_stream_buffers, Fig5Params, SharingProblem};
use streamgate_ilp::Rational;

/// Largest block size for which the exact MCM-based minimum-buffer search
/// (and with it the Fig. 8 non-monotonicity probe) still runs in
/// micro/milliseconds; beyond it A2 falls back to the analytic floors.
const EXACT_BUFFER_ETA_LIMIT: u64 = 64;

/// Tuning knobs for [`analyze_with`].
#[derive(Clone, Copy, Debug)]
pub struct AnalysisOptions {
    /// Run the exact MCM-based minimum-buffer search and the Fig. 8
    /// non-monotonicity probe (rule A2). The search is exhaustive over the
    /// capacity box, which costs seconds per stream in unoptimised builds —
    /// batch consumers (the differential harness analyses hundreds of
    /// deployments) turn it off. All findings it produces are *Warnings*,
    /// so disabling it never changes the accept/reject verdict.
    pub exact_buffers: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            exact_buffers: true,
        }
    }
}

/// Run every rule over `spec` with default options and collect the findings
/// into a [`Report`].
pub fn analyze(spec: &DeploySpec) -> Report {
    analyze_with(spec, &AnalysisOptions::default())
}

/// Run every rule over `spec` and collect the findings into a [`Report`].
pub fn analyze_with(spec: &DeploySpec, opts: &AnalysisOptions) -> Report {
    let prob = spec.sharing_problem();
    let etas = spec.etas();
    let c0 = spec.c0();
    let gamma = if spec.streams.is_empty() {
        0
    } else {
        prob.gamma(&etas)
    };
    let util = prob.utilisation();

    let mut diags = Vec::new();
    let structurally_ok = check_structure(spec, &mut diags);
    let throughput_ok = check_throughput(spec, &prob, &etas, gamma, &util, &mut diags);
    check_buffers(spec, &prob, &etas, gamma, throughput_ok, opts, &mut diags);
    check_tdm(spec, &mut diags);
    check_space_check(spec, &mut diags);
    check_credits(spec, c0, &mut diags);
    check_liveness(spec, &prob, &etas, structurally_ok, &mut diags);

    // Deterministic order: by rule, most severe first, then insertion order.
    diags.sort_by_key(|d| (d.rule, std::cmp::Reverse(d.severity)));

    let bounds = spec
        .streams
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let tau_hat = prob.tau_hat(i, etas[i]);
            StreamBounds {
                stream: s.name.clone(),
                eta_in: s.eta_in,
                tau_hat,
                omega_hat: gamma - tau_hat,
                mu: (s.mu.numer(), s.mu.denom()),
            }
        })
        .collect();

    Report {
        deployment: spec.name.clone(),
        diagnostics: diags,
        gamma,
        utilisation: (util.numer(), util.denom()),
        bounds,
    }
}

fn stream_loc(spec: &DeploySpec, index: usize) -> Location {
    Location::Stream {
        index,
        name: spec.streams[index].name.clone(),
    }
}

/// Structural sanity: block sizes and rates that the rest of the analysis
/// (and the Fig. 5 model construction) relies on. Returns a per-stream
/// "sound enough to model" flag.
fn check_structure(spec: &DeploySpec, diags: &mut Vec<Diagnostic>) -> Vec<bool> {
    let mut ok = vec![true; spec.streams.len()];
    if spec.chain.is_empty() {
        diags.push(Diagnostic {
            rule: RuleId::A1Liveness,
            severity: Severity::Error,
            location: Location::Deployment,
            message: "the accelerator chain is empty: there is nothing to share".into(),
        });
        ok.iter_mut().for_each(|v| *v = false);
    }
    if spec.streams.is_empty() {
        diags.push(Diagnostic {
            rule: RuleId::A1Liveness,
            severity: Severity::Warning,
            location: Location::Deployment,
            message: "no streams are deployed on the chain".into(),
        });
    }
    for (i, s) in spec.streams.iter().enumerate() {
        if s.eta_in == 0 || s.eta_out == 0 {
            diags.push(Diagnostic {
                rule: RuleId::A1Liveness,
                severity: Severity::Error,
                location: stream_loc(spec, i),
                message: format!(
                    "block sizes must be positive (eta_in = {}, eta_out = {})",
                    s.eta_in, s.eta_out
                ),
            });
            ok[i] = false;
            continue;
        }
        if s.eta_out > s.eta_in {
            diags.push(Diagnostic {
                rule: RuleId::A1Liveness,
                severity: Severity::Warning,
                location: stream_loc(spec, i),
                message: format!(
                    "eta_out {} > eta_in {}: interpolating chains are outside the \
                     analysed model; bounds assume eta_out <= eta_in",
                    s.eta_out, s.eta_in
                ),
            });
        } else if s.eta_in % s.eta_out != 0 {
            diags.push(Diagnostic {
                rule: RuleId::A1Liveness,
                severity: Severity::Warning,
                location: stream_loc(spec, i),
                message: format!(
                    "eta_in {} is not an integer multiple of eta_out {}: the chain's \
                     decimation factor is fractional per block",
                    s.eta_in, s.eta_out
                ),
            });
        }
        if !s.mu.is_positive() {
            diags.push(Diagnostic {
                rule: RuleId::A3Throughput,
                severity: Severity::Error,
                location: stream_loc(spec, i),
                message: format!("required throughput mu = {} must be positive", s.mu),
            });
            ok[i] = false;
        }
    }
    ok
}

/// A3 — Eq. 5–9: aggregate utilisation and the per-stream throughput
/// constraint `η_s/γ ≥ μ_s`. Returns a per-stream pass flag.
fn check_throughput(
    spec: &DeploySpec,
    prob: &SharingProblem,
    etas: &[u64],
    gamma: u64,
    util: &Rational,
    diags: &mut Vec<Diagnostic>,
) -> Vec<bool> {
    let mut ok = vec![true; spec.streams.len()];
    if spec.streams.is_empty() {
        return ok;
    }
    if spec.streams.iter().any(|s| !s.mu.is_positive()) {
        // Structural error already reported; utilisation is meaningless.
        ok.iter_mut().for_each(|v| *v = false);
        return ok;
    }
    if *util >= Rational::ONE {
        diags.push(Diagnostic {
            rule: RuleId::A3Throughput,
            severity: Severity::Error,
            location: Location::Deployment,
            message: format!(
                "aggregate chain utilisation c0*sum(mu) = {}/{} >= 1: every sample \
                 occupies the chain for c0 = {} cycles, so NO block sizes can meet \
                 the required rates (Eq. 8)",
                util.numer(),
                util.denom(),
                prob.params.c0()
            ),
        });
        ok.iter_mut().for_each(|v| *v = false);
        return ok;
    }
    let gamma_r = Rational::from_int(gamma as i128);
    for (i, s) in spec.streams.iter().enumerate() {
        let need = s.mu * gamma_r; // minimum η for this γ (Eq. 5)
        if Rational::from_int(etas[i] as i128) < need {
            let need_eta = need.ceil();
            diags.push(Diagnostic {
                rule: RuleId::A3Throughput,
                severity: Severity::Error,
                location: stream_loc(spec, i),
                message: format!(
                    "throughput infeasible (Eq. 5): eta/gamma = {}/{gamma} < mu = {}; \
                     with this round the stream needs eta >= {need_eta} (or smaller \
                     blocks elsewhere to shrink gamma)",
                    etas[i], s.mu
                ),
            });
            ok[i] = false;
        }
    }
    if ok.iter().all(|&v| v) {
        // Report the Algorithm 1 minimum for context: how much slack the
        // configured block sizes leave.
        if let Ok(min) = streamgate_core::solve_blocksizes_checked(prob) {
            diags.push(Diagnostic {
                rule: RuleId::A3Throughput,
                severity: Severity::Info,
                location: Location::Deployment,
                message: format!(
                    "Eq. 5 holds for every stream; Algorithm 1 minimum block sizes \
                     {:?} (gamma = {}), configured {:?} (gamma = {gamma})",
                    min.etas, min.gamma, etas
                ),
            });
        }
    }
    ok
}

/// A2 — buffer capacity sufficiency (Fig. 8): hard floors (a C-FIFO must
/// hold one whole block for the gateway to ever admit it), round-length
/// influx, the exact minimum capacities where affordable, and the
/// non-monotone trap probe.
fn check_buffers(
    spec: &DeploySpec,
    prob: &SharingProblem,
    etas: &[u64],
    gamma: u64,
    throughput_ok: Vec<bool>,
    opts: &AnalysisOptions,
    diags: &mut Vec<Diagnostic>,
) {
    let gamma_r = Rational::from_int(gamma as i128);
    for (i, s) in spec.streams.iter().enumerate() {
        if s.eta_in == 0 || s.eta_out == 0 {
            continue; // structural error already reported
        }
        if s.input_capacity < s.eta_in {
            diags.push(Diagnostic {
                rule: RuleId::A2BufferCapacity,
                severity: Severity::Error,
                location: stream_loc(spec, i),
                message: format!(
                    "input capacity {} < eta_in {}: a full block never fits, the \
                     gateway can never admit this stream (deadlock)",
                    s.input_capacity, s.eta_in
                ),
            });
            continue;
        }
        if s.output_capacity < s.eta_out && spec.check_for_space {
            diags.push(Diagnostic {
                rule: RuleId::A2BufferCapacity,
                severity: Severity::Error,
                location: stream_loc(spec, i),
                message: format!(
                    "output capacity {} < eta_out {}: the check-for-space admission \
                     test can never pass, the block is never admitted (deadlock)",
                    s.output_capacity, s.eta_out
                ),
            });
            continue;
        }
        if !s.mu.is_positive() || !throughput_ok[i] {
            continue; // no meaningful throughput-driven sizing
        }
        // Influx during one worst-case round: the producer keeps writing at
        // μ while the round (γ cycles) serves every stream once.
        let influx = (s.mu * gamma_r).ceil().max(0) as u64;
        let sustained_in = s.eta_in + influx;
        if s.input_capacity < sustained_in {
            diags.push(Diagnostic {
                rule: RuleId::A2BufferCapacity,
                severity: Severity::Warning,
                location: stream_loc(spec, i),
                message: format!(
                    "input capacity {} < eta_in + ceil(mu*gamma) = {} + {influx}: a \
                     hard producer can overflow (lose samples) while a worst-case \
                     round of gamma = {gamma} cycles is in progress",
                    s.input_capacity, s.eta_in
                ),
            });
        }
        // Exact minimum capacities + Fig. 8 probe (affordable block sizes
        // only: the joint MCM search grows with eta^2).
        if opts.exact_buffers && s.eta_in <= EXACT_BUFFER_ETA_LIMIT && s.eta_in == s.eta_out {
            let rho_p = (s.mu.recip().floor().max(1)) as u64;
            // The search cost grows with the cap, and we only need to decide
            // "configured < minimum": anything beyond ~4 blocks of slack is
            // sufficient in every regime the model covers (double-buffering
            // plus pipeline fill), so cap the search there.
            let cap_limit = 8 * s.eta_in + 64;
            let min_now = minimum_stream_buffers(prob, i, etas, rho_p, 1, cap_limit);
            if let Some(min) = min_now {
                if s.output_capacity < min.alpha3 {
                    diags.push(Diagnostic {
                        rule: RuleId::A2BufferCapacity,
                        severity: Severity::Warning,
                        location: stream_loc(spec, i),
                        message: format!(
                            "output capacity {} is below the computed minimum alpha3 = \
                             {} for eta = {}: the consumer-side buffer throttles the \
                             stream below mu under worst-case phasing",
                            s.output_capacity, min.alpha3, s.eta_in
                        ),
                    });
                }
                // Fig. 8 non-monotone trap: would a LARGER block size need
                // LESS buffer? Probe a few bigger etas.
                let eta = etas[i];
                let candidates = [
                    eta + 1,
                    eta + eta.div_ceil(4),
                    eta + eta.div_ceil(2),
                    2 * eta,
                ];
                let mut best: Option<(u64, u64)> = None;
                for &cand in &candidates {
                    if cand <= eta || cand > 2 * EXACT_BUFFER_ETA_LIMIT {
                        continue;
                    }
                    let mut alt = etas.to_vec();
                    alt[i] = cand;
                    if let Some(m) = minimum_stream_buffers(prob, i, &alt, rho_p, 1, cap_limit) {
                        if m.alpha3 < min.alpha3 && best.map(|(_, a)| m.alpha3 < a).unwrap_or(true)
                        {
                            best = Some((cand, m.alpha3));
                        }
                    }
                }
                if let Some((cand, alpha3)) = best {
                    diags.push(Diagnostic {
                        rule: RuleId::A2BufferCapacity,
                        severity: Severity::Warning,
                        location: stream_loc(spec, i),
                        message: format!(
                            "non-monotone buffer sizing (Fig. 8): a LARGER block size \
                             eta = {cand} needs only alpha3 = {alpha3} < {} required \
                             at the configured eta = {eta} — growing the block would \
                             shrink the buffer",
                            min.alpha3
                        ),
                    });
                }
            }
        }
    }
}

/// A4 — TDM slot tables: replication-interval consistency (declared period
/// vs Σ budgets) and per-task rate feasibility (`budget/period ≥ 1/interval`).
fn check_tdm(spec: &DeploySpec, diags: &mut Vec<Diagnostic>) {
    for (pi, p) in spec.processors.iter().enumerate() {
        let loc = |task: Option<String>| Location::Processor {
            index: pi,
            name: p.name.clone(),
            task,
        };
        if p.tasks.is_empty() {
            continue;
        }
        if p.tasks.iter().any(|t| t.budget == 0) {
            diags.push(Diagnostic {
                rule: RuleId::A4TdmSchedule,
                severity: Severity::Error,
                location: loc(None),
                message: "every TDM task needs a positive slot budget".into(),
            });
            continue;
        }
        let period: u64 = p.tasks.iter().map(|t| t.budget).sum();
        if let Some(declared) = p.declared_period {
            if declared != period {
                diags.push(Diagnostic {
                    rule: RuleId::A4TdmSchedule,
                    severity: Severity::Error,
                    location: loc(None),
                    message: format!(
                        "replication-interval mismatch: declared period {declared} but \
                         the slot table sums to {period} (the tile replicates every \
                         sum-of-budgets cycles)"
                    ),
                });
            }
        }
        for t in &p.tasks {
            let Some(interval) = t.required_interval else {
                continue;
            };
            if interval == 0 {
                diags.push(Diagnostic {
                    rule: RuleId::A4TdmSchedule,
                    severity: Severity::Error,
                    location: loc(Some(t.name.clone())),
                    message: "required interval must be positive".into(),
                });
                continue;
            }
            // Sustainable rate is budget/period ticks per cycle; the task
            // needs 1/interval.
            if t.budget * interval < period {
                diags.push(Diagnostic {
                    rule: RuleId::A4TdmSchedule,
                    severity: Severity::Error,
                    location: loc(Some(t.name.clone())),
                    message: format!(
                        "slot table infeasible: task needs one tick per {interval} \
                         cycles but gets only {}/{period} of the tile — sustained \
                         rate falls short by a factor of {:.2}",
                        t.budget,
                        period as f64 / (t.budget * interval) as f64
                    ),
                });
            } else if t.budget * interval == period {
                diags.push(Diagnostic {
                    rule: RuleId::A4TdmSchedule,
                    severity: Severity::Warning,
                    location: loc(Some(t.name.clone())),
                    message: format!(
                        "slot table exactly at capacity: budget {} over period \
                         {period} leaves zero slack for a task with interval \
                         {interval} — any added work on this tile misses deadlines",
                        t.budget
                    ),
                });
            }
        }
        diags.push(Diagnostic {
            rule: RuleId::A4TdmSchedule,
            severity: Severity::Info,
            location: loc(None),
            message: format!(
                "TDM slot table: {} task(s), replication interval {period} cycles",
                p.tasks.len()
            ),
        });
    }
}

/// A5 — Fig. 9: sharing the chain without the check-for-space admission
/// test exposes every stream to head-of-line blocking by any one consumer.
fn check_space_check(spec: &DeploySpec, diags: &mut Vec<Diagnostic>) {
    if spec.check_for_space {
        diags.push(Diagnostic {
            rule: RuleId::A5SpaceCheck,
            severity: Severity::Info,
            location: Location::Deployment,
            message: "check-for-space admission test enabled: a block only enters \
                      the chain when its whole output fits (Fig. 9 hazard excluded)"
                .into(),
        });
        return;
    }
    let mut wedged = false;
    for (i, s) in spec.streams.iter().enumerate() {
        if s.output_capacity < s.eta_out {
            wedged = true;
            diags.push(Diagnostic {
                rule: RuleId::A5SpaceCheck,
                severity: Severity::Error,
                location: stream_loc(spec, i),
                message: format!(
                    "check-for-space disabled and output capacity {} < eta_out {}: \
                     the admitted block can NEVER drain, the exit gateway stalls and \
                     head-of-line-blocks the shared chain forever (Fig. 9)",
                    s.output_capacity, s.eta_out
                ),
            });
        }
    }
    if !wedged && !spec.streams.is_empty() {
        diags.push(Diagnostic {
            rule: RuleId::A5SpaceCheck,
            severity: Severity::Warning,
            location: Location::Deployment,
            message: format!(
                "check-for-space admission test disabled: {} stream(s) share the \
                 chain with no guarantee their consumers keep up; a temporarily slow \
                 consumer head-of-line-blocks every other stream and voids the \
                 tau-hat/gamma bounds (Fig. 9, §V-G)",
                spec.streams.len()
            ),
        });
    }
}

/// A6 — ring credits: the NI depth is the credit window; the chain's
/// per-sample pace relies on it covering the data+credit round trip.
fn check_credits(spec: &DeploySpec, c0: u64, diags: &mut Vec<Diagnostic>) {
    if spec.ni_depth == 0 {
        diags.push(Diagnostic {
            rule: RuleId::A6CreditWindow,
            severity: Severity::Error,
            location: Location::Deployment,
            message: "NI depth 0: the credit-based flow control starts with zero \
                      credits, no sample can ever be transferred (deadlock)"
                .into(),
        });
        return;
    }
    // Adjacent ring stations: one data hop forward, one credit hop back —
    // a round trip of 2 cycles that the credit window must cover to sustain
    // the c0 pace.
    let window = spec.ni_depth as u64 * c0.max(1);
    if window < 2 {
        diags.push(Diagnostic {
            rule: RuleId::A6CreditWindow,
            severity: Severity::Warning,
            location: Location::Deployment,
            message: format!(
                "NI depth {} with c0 = {c0}: credit window {window} cycles is below \
                 the 2-cycle data+credit round trip of adjacent ring stations — the \
                 DMA stalls on credits and the effective per-sample pace exceeds c0, \
                 stretching blocks beyond tau-hat (the paper uses depth 2)",
                spec.ni_depth
            ),
        });
    } else {
        diags.push(Diagnostic {
            rule: RuleId::A6CreditWindow,
            severity: Severity::Info,
            location: Location::Deployment,
            message: format!(
                "NI depth {} sustains the c0 = {c0} pace (credit window {window} \
                 cycles >= 2-cycle ring round trip)",
                spec.ni_depth
            ),
        });
    }
}

/// A1 — liveness of the per-stream Fig. 5 CSDF model, checked with the
/// `dataflow` machinery: consistency (repetition vector) and deadlock-free
/// self-timed execution of two blocks.
fn check_liveness(
    spec: &DeploySpec,
    prob: &SharingProblem,
    etas: &[u64],
    structurally_ok: Vec<bool>,
    diags: &mut Vec<Diagnostic>,
) {
    for (i, s) in spec.streams.iter().enumerate() {
        if !structurally_ok[i] {
            continue;
        }
        // In the Fig. 5 model everything is counted in *input* samples;
        // scale the output capacity up-front (conservatively, floor).
        let alpha3_scaled = if s.eta_out <= s.eta_in {
            s.output_capacity * (s.eta_in / s.eta_out)
        } else {
            s.output_capacity
        };
        if s.input_capacity < s.eta_in || alpha3_scaled < s.eta_in {
            diags.push(Diagnostic {
                rule: RuleId::A1Liveness,
                severity: Severity::Error,
                location: stream_loc(spec, i),
                message: format!(
                    "the Fig. 5 model deadlocks: a buffer cannot hold one whole block \
                     (alpha0 = {}, alpha3 = {alpha3_scaled} input-samples, eta = {})",
                    s.input_capacity, s.eta_in
                ),
            });
            continue;
        }
        let tau_hat = prob.tau_hat(i, etas[i]);
        let omega = prob.gamma(etas) - tau_hat;
        let rho_p = if s.mu.is_positive() {
            (s.mu.recip().floor().max(1)) as u64
        } else {
            1
        };
        let p = Fig5Params {
            eta: s.eta_in as usize,
            epsilon: spec.epsilon,
            rho_a: spec.rho_a(),
            delta: spec.delta,
            reconfig: s.reconfig,
            omega,
            rho_p,
            rho_c: 1,
            alpha0: s.input_capacity,
            alpha3: alpha3_scaled,
            ni_depth: spec.ni_depth as u64,
        };
        let model = fig5_csdf(&p);
        match streamgate_dataflow::simulate(&model.graph, 2) {
            Err(e) => diags.push(Diagnostic {
                rule: RuleId::A1Liveness,
                severity: Severity::Error,
                location: stream_loc(spec, i),
                message: format!("the Fig. 5 CSDF model is inconsistent: {e:?}"),
            }),
            Ok(trace) if trace.deadlocked => diags.push(Diagnostic {
                rule: RuleId::A1Liveness,
                severity: Severity::Error,
                location: stream_loc(spec, i),
                message: "self-timed execution of the Fig. 5 model deadlocks before \
                          completing two blocks"
                    .into(),
            }),
            Ok(trace) => diags.push(Diagnostic {
                rule: RuleId::A1Liveness,
                severity: Severity::Info,
                location: stream_loc(spec, i),
                message: format!(
                    "per-stream CSDF model is consistent and live: two blocks \
                     ({} consumer firings) complete by t = {}",
                    trace.firing_count(model.v_c),
                    trace.end_time
                ),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChainStage, ProcessorDeploy, StreamDeploy, TaskDeploy};

    fn small_spec() -> DeploySpec {
        DeploySpec {
            name: "t".into(),
            chain: vec![ChainStage {
                name: "acc".into(),
                rho: 1,
            }],
            epsilon: 4,
            delta: 1,
            ni_depth: 2,
            check_for_space: true,
            streams: vec![StreamDeploy {
                name: "s0".into(),
                mu: Rational::new(1, 40),
                eta_in: 8,
                eta_out: 8,
                reconfig: 20,
                input_capacity: 32,
                output_capacity: 32,
            }],
            processors: vec![],
        }
    }

    #[test]
    fn clean_spec_is_accepted_with_bounds() {
        let r = analyze(&small_spec());
        assert!(r.is_accepted(), "{}", r.render_text());
        assert!(r.has(RuleId::A1Liveness, Severity::Info));
        assert!(r.has(RuleId::A3Throughput, Severity::Info));
        assert_eq!(r.bounds.len(), 1);
        // τ̂ = 20 + 10·4 = 60, γ = τ̂ (single stream), Ω̂ = 0.
        assert_eq!(r.bounds[0].tau_hat, 60);
        assert_eq!(r.gamma, 60);
        assert_eq!(r.bounds[0].omega_hat, 0);
    }

    #[test]
    fn undersized_input_is_a2_error() {
        let mut s = small_spec();
        s.streams[0].input_capacity = 7;
        let r = analyze(&s);
        assert!(!r.is_accepted());
        assert!(r.has(RuleId::A2BufferCapacity, Severity::Error));
        // The model-level rule agrees: the Fig. 5 graph deadlocks.
        assert!(r.has(RuleId::A1Liveness, Severity::Error));
    }

    #[test]
    fn undersized_output_with_check_is_a2_error() {
        let mut s = small_spec();
        s.streams[0].output_capacity = 4;
        let r = analyze(&s);
        assert!(r.has(RuleId::A2BufferCapacity, Severity::Error));
    }

    #[test]
    fn oversubscribed_utilisation_is_a3_error() {
        let mut s = small_spec();
        s.streams[0].mu = Rational::new(1, 3); // c0 = 4 > 3 cycles/sample
        let r = analyze(&s);
        assert!(r.has(RuleId::A3Throughput, Severity::Error));
        assert!(!r.is_accepted());
    }

    #[test]
    fn eta_below_eq5_minimum_is_a3_error() {
        let mut s = small_spec();
        // γ(η=2) = 20 + 4·4 = 36; μ·γ = 36/20 > 2 = η → infeasible.
        s.streams[0].eta_in = 2;
        s.streams[0].eta_out = 2;
        s.streams[0].mu = Rational::new(1, 10);
        let r = analyze(&s);
        assert!(
            r.has(RuleId::A3Throughput, Severity::Error),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn missing_space_check_warns_and_errors_on_undersized_output() {
        let mut s = small_spec();
        s.check_for_space = false;
        let r = analyze(&s);
        assert!(r.has(RuleId::A5SpaceCheck, Severity::Warning));
        assert!(r.is_accepted());
        s.streams[0].output_capacity = 4;
        let r = analyze(&s);
        assert!(r.has(RuleId::A5SpaceCheck, Severity::Error));
    }

    #[test]
    fn tdm_rules_fire() {
        let mut s = small_spec();
        s.processors = vec![ProcessorDeploy {
            name: "FE".into(),
            declared_period: Some(5),
            tasks: vec![
                TaskDeploy {
                    name: "src".into(),
                    budget: 1,
                    required_interval: Some(3),
                },
                TaskDeploy {
                    name: "other".into(),
                    budget: 3,
                    required_interval: None,
                },
            ],
        }];
        let r = analyze(&s);
        // Declared period 5 ≠ Σ budgets 4 → Error; src needs 1/3 > 1/4 → Error.
        let a4_errors: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.rule == RuleId::A4TdmSchedule && d.severity == Severity::Error)
            .collect();
        assert_eq!(a4_errors.len(), 2, "{}", r.render_text());
    }

    #[test]
    fn ni_depth_rules_fire() {
        let mut s = small_spec();
        s.ni_depth = 0;
        let r = analyze(&s);
        assert!(r.has(RuleId::A6CreditWindow, Severity::Error));
        s.ni_depth = 1;
        s.epsilon = 1;
        s.chain[0].rho = 1;
        s.delta = 1;
        s.streams[0].mu = Rational::new(1, 40);
        let r = analyze(&s);
        assert!(
            r.has(RuleId::A6CreditWindow, Severity::Warning),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn fig8_nonmonotone_trap_warns() {
        // The Fig. 8 regime: μ = 1/8, c0 = 5, R = 6. η = 6 is the smallest
        // Eq. 5-feasible block size (tight → double-buffered α₃), while
        // larger blocks have slack and need less (the crossover of §V-E).
        let s = DeploySpec {
            name: "fig8".into(),
            chain: vec![ChainStage {
                name: "acc".into(),
                rho: 5,
            }],
            epsilon: 5,
            delta: 1,
            ni_depth: 2,
            check_for_space: true,
            streams: vec![StreamDeploy {
                name: "s".into(),
                mu: Rational::new(1, 8),
                eta_in: 6,
                eta_out: 6,
                reconfig: 6,
                input_capacity: 64,
                output_capacity: 64,
            }],
            processors: vec![],
        };
        let r = analyze(&s);
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.rule == RuleId::A2BufferCapacity && d.message.contains("non-monotone")),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn fig9_presets_match_expectations() {
        // Skip the exact buffer search here: the findings asserted below are
        // all capacity-floor / space-check results, which don't need it.
        let fast = AnalysisOptions {
            exact_buffers: false,
        };
        let good = analyze_with(&DeploySpec::fig9(true), &fast);
        // s1's 4-slot output cannot hold η_out = 16 → A2 Error even with
        // the check (the block is simply never admitted).
        assert!(good.has(RuleId::A2BufferCapacity, Severity::Error));
        let bad = analyze_with(&DeploySpec::fig9(false), &fast);
        assert!(bad.has(RuleId::A5SpaceCheck, Severity::Error));
    }

    #[test]
    fn fig6_and_pal_presets_are_accepted() {
        let r = analyze(&DeploySpec::fig6());
        assert!(r.is_accepted(), "{}", r.render_text());
        let r = analyze(&DeploySpec::pal_scaled());
        assert!(r.is_accepted(), "{}", r.render_text());
        assert_eq!(r.bounds.len(), 4);
    }
}
