//! Structured diagnostics: rule identifiers, severities, and the report
//! that [`crate::analyze`] produces.
//!
//! Every diagnostic carries a machine-readable rule ID (`A1`–`A13`), a
//! severity, a location inside the deployment (gateway / stream /
//! processor), and a human message. Reports serialise to JSON (and parse
//! back) so build pipelines can gate on them.

use crate::json::{self, Json};
use std::fmt;

/// The analyzer rule that produced a diagnostic.
///
/// Each rule checks one compile-time property from the paper; see
/// DESIGN.md §8 for the mapping to equations and figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// A1 — CSDF liveness/deadlock-freedom of the per-stream Fig. 5 model.
    A1Liveness,
    /// A2 — FIFO/C-FIFO capacity sufficiency vs the computed minimum buffer
    /// capacities (Fig. 8), including the non-monotone trap.
    A2BufferCapacity,
    /// A3 — per-stream throughput feasibility `η_s/γ_s ≥ μ_s` (Eq. 5–9).
    A3Throughput,
    /// A4 — TDM slot-table feasibility and replication-interval consistency
    /// on processor tiles.
    A4TdmSchedule,
    /// A5 — head-of-line-blocking hazard when the exit gateway shares a
    /// FIFO without the check-for-space admission test (Fig. 9).
    A5SpaceCheck,
    /// A6 — ring-credit sufficiency: NI depth vs the credit window the
    /// chain pace requires.
    A6CreditWindow,
    /// A7 — cross-gateway ring contention: per-hop injection load and
    /// credit interference summed over all streams' block traffic.
    A7RingContention,
    /// A8 — system round feasibility: γ over *all* admitted streams
    /// (Eq. 3–4) with per-stream throughput checks at system scope.
    A8SystemRound,
    /// A9 — TDM slot-table conflicts across gateways on the shared
    /// configuration bus (overlap, orphaned slots, window overrun).
    A9SlotConflict,
    /// A10 — end-to-end latency composition through the Fig. 7
    /// single-actor SDF abstraction.
    A10EndToEndLatency,
    /// A11 — per-mode admissibility: every declared stream mode must
    /// independently pass A1–A10 when substituted for the stream's
    /// committed configuration.
    A11ModeAdmissibility,
    /// A12 — worst-case mode-transition delay: closed-form bound on the
    /// cycles from switch request to the new mode's steady state
    /// (drain-to-idle, config-bus save/restore, first-round ramp-in).
    A12TransitionDelay,
    /// A13 — transition interference-freedom: non-switching streams keep
    /// their Eq. 3–4 round bounds and ring-load budgets throughout the
    /// transition window, under worst-of-modes load from the switcher.
    A13TransitionInterference,
}

impl RuleId {
    /// All rules, in report order.
    pub const ALL: [RuleId; 13] = [
        RuleId::A1Liveness,
        RuleId::A2BufferCapacity,
        RuleId::A3Throughput,
        RuleId::A4TdmSchedule,
        RuleId::A5SpaceCheck,
        RuleId::A6CreditWindow,
        RuleId::A7RingContention,
        RuleId::A8SystemRound,
        RuleId::A9SlotConflict,
        RuleId::A10EndToEndLatency,
        RuleId::A11ModeAdmissibility,
        RuleId::A12TransitionDelay,
        RuleId::A13TransitionInterference,
    ];

    /// The short machine-readable code (`"A1"` … `"A10"`).
    pub fn code(&self) -> &'static str {
        match self {
            RuleId::A1Liveness => "A1",
            RuleId::A2BufferCapacity => "A2",
            RuleId::A3Throughput => "A3",
            RuleId::A4TdmSchedule => "A4",
            RuleId::A5SpaceCheck => "A5",
            RuleId::A6CreditWindow => "A6",
            RuleId::A7RingContention => "A7",
            RuleId::A8SystemRound => "A8",
            RuleId::A9SlotConflict => "A9",
            RuleId::A10EndToEndLatency => "A10",
            RuleId::A11ModeAdmissibility => "A11",
            RuleId::A12TransitionDelay => "A12",
            RuleId::A13TransitionInterference => "A13",
        }
    }

    /// A one-line human title.
    pub fn title(&self) -> &'static str {
        match self {
            RuleId::A1Liveness => "CSDF liveness (Fig. 5 model)",
            RuleId::A2BufferCapacity => "buffer capacity sufficiency (Fig. 8)",
            RuleId::A3Throughput => "throughput feasibility (Eq. 5-9)",
            RuleId::A4TdmSchedule => "TDM slot-table feasibility",
            RuleId::A5SpaceCheck => "check-for-space admission (Fig. 9)",
            RuleId::A6CreditWindow => "ring credit sufficiency",
            RuleId::A7RingContention => "cross-gateway ring contention",
            RuleId::A8SystemRound => "system round feasibility (Eq. 3-4)",
            RuleId::A9SlotConflict => "configuration slot-table conflicts",
            RuleId::A10EndToEndLatency => "end-to-end latency (Fig. 7 SDF)",
            RuleId::A11ModeAdmissibility => "per-mode admissibility",
            RuleId::A12TransitionDelay => "mode-transition delay bound",
            RuleId::A13TransitionInterference => "transition interference-freedom",
        }
    }

    /// Parse a code emitted by [`RuleId::code`].
    pub fn from_code(code: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.code() == code)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// How severe a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: a verified property or computed bound worth seeing.
    Info,
    /// The deployment works but relies on behaviour outside the analysed
    /// guarantees (e.g. a consumer keeping up), or wastes resources.
    Warning,
    /// The deployment provably deadlocks, overflows, or misses throughput.
    Error,
}

impl Severity {
    /// The lowercase name (`"info"` / `"warning"` / `"error"`).
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parse a name emitted by [`Severity::name`].
    pub fn from_name(name: &str) -> Option<Severity> {
        match name {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where in the deployment a diagnostic points.
///
/// The derived `Ord` (deployment < gateway < stream < processor, then by
/// index/name) is part of the report's deterministic diagnostic order:
/// reports assembled from different rule-evaluation orders — e.g. a full
/// analysis vs an incremental re-analysis — must sort identically.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Location {
    /// The deployment as a whole (gateway pair + chain).
    Deployment,
    /// Gateway pair `index` (with its name) in a multi-gateway deployment.
    Gateway {
        /// Gateway index in spec order.
        index: usize,
        /// Gateway name.
        name: String,
    },
    /// Stream `index` (with its name).
    Stream {
        /// Stream index in spec order.
        index: usize,
        /// Stream name.
        name: String,
    },
    /// Processor tile `index` (with its name), optionally one task on it.
    Processor {
        /// Processor index in spec order.
        index: usize,
        /// Processor name.
        name: String,
        /// Task name, when the diagnostic is about one task's slots.
        task: Option<String>,
    },
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Deployment => f.write_str("deployment"),
            Location::Gateway { index, name } => write!(f, "gateway[{index}] {name}"),
            Location::Stream { index, name } => write!(f, "stream[{index}] {name}"),
            Location::Processor { index, name, task } => match task {
                Some(t) => write!(f, "processor[{index}] {name}/{t}"),
                None => write!(f, "processor[{index}] {name}"),
            },
        }
    }
}

impl Location {
    fn to_json(&self) -> Json {
        match self {
            Location::Deployment => Json::obj(vec![("kind", Json::Str("deployment".into()))]),
            Location::Gateway { index, name } => Json::obj(vec![
                ("kind", Json::Str("gateway".into())),
                ("index", Json::Int(*index as i128)),
                ("name", Json::Str(name.clone())),
            ]),
            Location::Stream { index, name } => Json::obj(vec![
                ("kind", Json::Str("stream".into())),
                ("index", Json::Int(*index as i128)),
                ("name", Json::Str(name.clone())),
            ]),
            Location::Processor { index, name, task } => {
                let mut pairs = vec![
                    ("kind", Json::Str("processor".into())),
                    ("index", Json::Int(*index as i128)),
                    ("name", Json::Str(name.clone())),
                ];
                if let Some(t) = task {
                    pairs.push(("task", Json::Str(t.clone())));
                }
                Json::obj(pairs)
            }
        }
    }

    fn from_json(v: &Json) -> Result<Location, String> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("location without kind")?;
        let index = || {
            v.get("index")
                .and_then(Json::as_int)
                .map(|i| i as usize)
                .ok_or_else(|| "location without index".to_string())
        };
        let name = || {
            v.get("name")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| "location without name".to_string())
        };
        match kind {
            "deployment" => Ok(Location::Deployment),
            "gateway" => Ok(Location::Gateway {
                index: index()?,
                name: name()?,
            }),
            "stream" => Ok(Location::Stream {
                index: index()?,
                name: name()?,
            }),
            "processor" => Ok(Location::Processor {
                index: index()?,
                name: name()?,
                task: v.get("task").and_then(Json::as_str).map(str::to_string),
            }),
            other => Err(format!("unknown location kind {other:?}")),
        }
    }
}

/// One finding of the analyzer.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// How severe the finding is.
    pub severity: Severity,
    /// Where in the deployment it points.
    pub location: Location,
    /// Human-readable message with the relevant numbers.
    pub message: String,
}

impl Diagnostic {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rule", Json::Str(self.rule.code().into())),
            ("severity", Json::Str(self.severity.name().into())),
            ("location", self.location.to_json()),
            ("message", Json::Str(self.message.clone())),
        ])
    }

    fn from_json(v: &Json) -> Result<Diagnostic, String> {
        Ok(Diagnostic {
            rule: v
                .get("rule")
                .and_then(Json::as_str)
                .and_then(RuleId::from_code)
                .ok_or("diagnostic without valid rule")?,
            severity: v
                .get("severity")
                .and_then(Json::as_str)
                .and_then(Severity::from_name)
                .ok_or("diagnostic without valid severity")?,
            location: Location::from_json(v.get("location").ok_or("diagnostic without location")?)?,
            message: v
                .get("message")
                .and_then(Json::as_str)
                .ok_or("diagnostic without message")?
                .to_string(),
        })
    }
}

/// Sort diagnostics into the report's canonical order: by rule, then
/// location, then most severe first, then message. The key is a *total*
/// order over every field, so the result is independent of the order the
/// rules pushed their findings — a full analysis and an incremental
/// re-analysis that produce the same multiset of diagnostics render
/// byte-identical reports.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (
            a.rule,
            &a.location,
            std::cmp::Reverse(a.severity),
            &a.message,
        )
            .cmp(&(
                b.rule,
                &b.location,
                std::cmp::Reverse(b.severity),
                &b.message,
            ))
    });
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:7} {} [{}] {}: {}",
            self.severity.name(),
            self.rule.code(),
            self.rule.title(),
            self.location,
            self.message
        )
    }
}

/// The per-stream worst-case bounds the analyzer computed on the way
/// (Eq. 2–4) — reported so a rejected configuration shows *how far off* it
/// is and an accepted one shows its guarantees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamBounds {
    /// Stream name.
    pub stream: String,
    /// Configured block size η_s (input samples).
    pub eta_in: u64,
    /// Worst-case block time τ̂_s = R_s + (η_s + 2)·c0 (Eq. 2), cycles.
    pub tau_hat: u64,
    /// Worst-case waiting time Ω̂_s = Σ_{i≠s} τ̂_i (Eq. 3), cycles.
    pub omega_hat: u64,
    /// Required throughput μ_s as an exact fraction (numerator, denominator)
    /// in samples/cycle.
    pub mu: (i128, i128),
}

impl StreamBounds {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("stream", Json::Str(self.stream.clone())),
            ("eta_in", Json::Int(self.eta_in as i128)),
            ("tau_hat", Json::Int(self.tau_hat as i128)),
            ("omega_hat", Json::Int(self.omega_hat as i128)),
            (
                "mu",
                Json::Array(vec![Json::Int(self.mu.0), Json::Int(self.mu.1)]),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<StreamBounds, String> {
        let mu = v
            .get("mu")
            .and_then(Json::as_array)
            .filter(|a| a.len() == 2)
            .ok_or("bounds without mu")?;
        Ok(StreamBounds {
            stream: v
                .get("stream")
                .and_then(Json::as_str)
                .ok_or("bounds without stream")?
                .to_string(),
            eta_in: v
                .get("eta_in")
                .and_then(Json::as_u64)
                .ok_or("bounds without eta_in")?,
            tau_hat: v
                .get("tau_hat")
                .and_then(Json::as_u64)
                .ok_or("bounds without tau_hat")?,
            omega_hat: v
                .get("omega_hat")
                .and_then(Json::as_u64)
                .ok_or("bounds without omega_hat")?,
            mu: (
                mu[0].as_int().ok_or("bad mu numerator")?,
                mu[1].as_int().ok_or("bad mu denominator")?,
            ),
        })
    }
}

/// The complete result of one analyzer run.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Name of the analysed deployment.
    pub deployment: String,
    /// All findings, grouped by rule then severity (most severe first
    /// within a rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Worst-case round time γ = Σ_s τ̂_s (Eq. 4), cycles.
    pub gamma: u64,
    /// Aggregate chain utilisation c0·Σ_s μ_s as a fraction
    /// (numerator, denominator); must be < 1 for any block sizes to work.
    pub utilisation: (i128, i128),
    /// Per-stream computed bounds.
    pub bounds: Vec<StreamBounds>,
}

impl Report {
    /// The most severe severity present, or `None` when there are no
    /// diagnostics at all.
    pub fn worst_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// All diagnostics of a given severity.
    pub fn with_severity(&self, s: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.severity == s)
    }

    /// Number of Error diagnostics.
    pub fn error_count(&self) -> usize {
        self.with_severity(Severity::Error).count()
    }

    /// True when the deployment passed: no Error diagnostics (Warnings and
    /// Infos are allowed).
    pub fn is_accepted(&self) -> bool {
        self.error_count() == 0
    }

    /// True when some diagnostic of `rule` has severity `severity`.
    pub fn has(&self, rule: RuleId, severity: Severity) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.rule == rule && d.severity == severity)
    }

    /// Render the human-readable multi-line report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "static analysis of deployment '{}': {} error(s), {} warning(s), {} info\n",
            self.deployment,
            self.error_count(),
            self.with_severity(Severity::Warning).count(),
            self.with_severity(Severity::Info).count(),
        ));
        out.push_str(&format!(
            "utilisation c0*sum(mu) = {}/{} ({:.1} %); round bound gamma = {} cycles\n",
            self.utilisation.0,
            self.utilisation.1,
            100.0 * self.utilisation.0 as f64 / self.utilisation.1 as f64,
            self.gamma
        ));
        for b in &self.bounds {
            out.push_str(&format!(
                "  stream {}: eta = {}, tau_hat = {}, omega_hat = {}, mu = {}/{}\n",
                b.stream, b.eta_in, b.tau_hat, b.omega_hat, b.mu.0, b.mu.1
            ));
        }
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n"));
        }
        out.push_str(if self.is_accepted() {
            "verdict: ACCEPTED\n"
        } else {
            "verdict: REJECTED\n"
        });
        out
    }

    /// Serialise to a JSON tree (see [`Report::to_json_text`]).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("deployment", Json::Str(self.deployment.clone())),
            ("accepted", Json::Bool(self.is_accepted())),
            ("gamma", Json::Int(self.gamma as i128)),
            (
                "utilisation",
                Json::Array(vec![
                    Json::Int(self.utilisation.0),
                    Json::Int(self.utilisation.1),
                ]),
            ),
            (
                "bounds",
                Json::Array(self.bounds.iter().map(StreamBounds::to_json).collect()),
            ),
            (
                "diagnostics",
                Json::Array(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
        ])
    }

    /// Serialise to compact JSON text.
    pub fn to_json_text(&self) -> String {
        self.to_json().to_text()
    }

    /// Parse a report back from the JSON produced by
    /// [`Report::to_json_text`] — the machine-readable round trip.
    pub fn from_json_text(text: &str) -> Result<Report, String> {
        let v = json::parse(text)?;
        let util = v
            .get("utilisation")
            .and_then(Json::as_array)
            .filter(|a| a.len() == 2)
            .ok_or("report without utilisation")?;
        Ok(Report {
            deployment: v
                .get("deployment")
                .and_then(Json::as_str)
                .ok_or("report without deployment")?
                .to_string(),
            diagnostics: v
                .get("diagnostics")
                .and_then(Json::as_array)
                .ok_or("report without diagnostics")?
                .iter()
                .map(Diagnostic::from_json)
                .collect::<Result<_, _>>()?,
            gamma: v
                .get("gamma")
                .and_then(Json::as_u64)
                .ok_or("report without gamma")?,
            utilisation: (
                util[0].as_int().ok_or("bad utilisation numerator")?,
                util[1].as_int().ok_or("bad utilisation denominator")?,
            ),
            bounds: v
                .get("bounds")
                .and_then(Json::as_array)
                .ok_or("report without bounds")?
                .iter()
                .map(StreamBounds::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        Report {
            deployment: "t".into(),
            diagnostics: vec![
                Diagnostic {
                    rule: RuleId::A2BufferCapacity,
                    severity: Severity::Error,
                    location: Location::Stream {
                        index: 1,
                        name: "s1".into(),
                    },
                    message: "input capacity 7 < eta 8".into(),
                },
                Diagnostic {
                    rule: RuleId::A4TdmSchedule,
                    severity: Severity::Warning,
                    location: Location::Processor {
                        index: 0,
                        name: "FE".into(),
                        task: Some("src".into()),
                    },
                    message: "no slack".into(),
                },
            ],
            gamma: 1234,
            utilisation: (3, 4),
            bounds: vec![StreamBounds {
                stream: "s1".into(),
                eta_in: 8,
                tau_hat: 100,
                omega_hat: 50,
                mu: (1, 16),
            }],
        }
    }

    #[test]
    fn json_roundtrip_preserves_report() {
        let r = sample_report();
        let text = r.to_json_text();
        let back = Report::from_json_text(&text).unwrap();
        assert_eq!(back, r);
        // And the re-emitted text is byte-identical (deterministic keys).
        assert_eq!(back.to_json_text(), text);
    }

    #[test]
    fn severity_ordering_drives_acceptance() {
        let mut r = sample_report();
        assert!(!r.is_accepted());
        assert_eq!(r.worst_severity(), Some(Severity::Error));
        r.diagnostics.retain(|d| d.severity != Severity::Error);
        assert!(r.is_accepted());
        assert_eq!(r.worst_severity(), Some(Severity::Warning));
    }

    #[test]
    fn rule_codes_roundtrip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::from_code(r.code()), Some(r));
        }
        assert_eq!(RuleId::from_code("A14"), None);
        assert_eq!(RuleId::from_code("A10"), Some(RuleId::A10EndToEndLatency));
    }

    #[test]
    fn text_render_mentions_verdict_and_rules() {
        let r = sample_report();
        let t = r.render_text();
        assert!(t.contains("REJECTED"));
        assert!(t.contains("A2"));
        assert!(t.contains("stream[1] s1"));
    }
}
