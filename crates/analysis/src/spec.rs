//! The analyzable deployment description.
//!
//! [`DeploySpec`] is the static input of the analyzer: everything the rules
//! need to verify a gateway deployment *before* it runs — chain timing
//! (ε, ρ per stage, δ), NI depth, the check-for-space switch, per-stream
//! block sizes / rates / FIFO capacities, and the TDM slot tables of the
//! processor tiles. It deliberately mirrors [`streamgate_core::SystemSpec`]
//! (the run-time chain description of §IV-B) plus the analysis-only fields
//! that a support library knows but the built platform no longer exposes
//! (required rates μ_s, declared TDM periods).

use crate::json::{self, Json};
use streamgate_core::{GatewayParams, SharingProblem, StreamSpec};
use streamgate_ilp::Rational;

/// One accelerator stage of the shared chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainStage {
    /// Diagnostic name.
    pub name: String,
    /// Worst-case processing time per sample (ρ of this stage, cycles).
    pub rho: u64,
}

/// One stream multiplexed over the gateway pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamDeploy {
    /// Diagnostic name.
    pub name: String,
    /// Required throughput μ_s at the chain input, samples/cycle.
    pub mu: Rational,
    /// Block size η_s in input samples.
    pub eta_in: u64,
    /// Block size at the exit gateway in output samples (η_in divided by
    /// the chain's decimation factor; equal to η_in for rate-preserving
    /// chains).
    pub eta_out: u64,
    /// Reconfiguration time R_s per block, cycles.
    pub reconfig: u64,
    /// Input C-FIFO capacity α₀, samples.
    pub input_capacity: u64,
    /// Output C-FIFO capacity α₃, samples.
    pub output_capacity: u64,
}

/// One software task in a processor tile's TDM slot table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskDeploy {
    /// Diagnostic name.
    pub name: String,
    /// TDM budget: consecutive slots per replication interval.
    pub budget: u64,
    /// Hard production/consumption period of the task in cycles (a rate
    /// source that must emit one sample every `n` cycles), when it has one.
    pub required_interval: Option<u64>,
}

/// One processor tile with its TDM slot table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcessorDeploy {
    /// Diagnostic name.
    pub name: String,
    /// The replication interval the deployment *intends*; the actual
    /// interval is the sum of budgets, and a mismatch is flagged (A4).
    pub declared_period: Option<u64>,
    /// Tasks in slot order.
    pub tasks: Vec<TaskDeploy>,
}

/// A complete static deployment description — the analyzer input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeploySpec {
    /// Deployment name (reported in diagnostics).
    pub name: String,
    /// The shared accelerator chain, in order.
    pub chain: Vec<ChainStage>,
    /// Entry-gateway DMA time per sample, ε (cycles).
    pub epsilon: u64,
    /// Exit-gateway copy time per sample, δ (cycles).
    pub delta: u64,
    /// Network-interface buffer depth (initial credits; 2 in the paper).
    pub ni_depth: u32,
    /// Whether the entry gateway performs the §V-G check-for-space
    /// admission test (Fig. 9).
    pub check_for_space: bool,
    /// The streams multiplexed over the chain.
    pub streams: Vec<StreamDeploy>,
    /// Processor tiles feeding/draining the streams.
    pub processors: Vec<ProcessorDeploy>,
}

impl DeploySpec {
    /// Worst-case per-sample accelerator time over the chain,
    /// ρ_A = max stage ρ.
    pub fn rho_a(&self) -> u64 {
        self.chain.iter().map(|s| s.rho).max().unwrap_or(0)
    }

    /// `c0 = max(ε, ρ_A, δ)` (Eq. 8).
    pub fn c0(&self) -> u64 {
        self.gateway_params().c0()
    }

    /// The chain timing parameters.
    pub fn gateway_params(&self) -> GatewayParams {
        GatewayParams {
            epsilon: self.epsilon,
            rho_a: self.rho_a(),
            delta: self.delta,
        }
    }

    /// The Eq. 5–9 sharing problem this deployment instantiates.
    pub fn sharing_problem(&self) -> SharingProblem {
        SharingProblem {
            params: self.gateway_params(),
            streams: self
                .streams
                .iter()
                .map(|s| StreamSpec {
                    name: s.name.clone(),
                    mu: s.mu,
                    reconfig: s.reconfig,
                })
                .collect(),
        }
    }

    /// The configured block sizes, in stream order.
    pub fn etas(&self) -> Vec<u64> {
        self.streams.iter().map(|s| s.eta_in).collect()
    }

    /// Serialise to a JSON tree (machine-readable spec interchange).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            (
                "chain",
                Json::Array(
                    self.chain
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("name", Json::Str(c.name.clone())),
                                ("rho", Json::Int(c.rho as i128)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("epsilon", Json::Int(self.epsilon as i128)),
            ("delta", Json::Int(self.delta as i128)),
            ("ni_depth", Json::Int(self.ni_depth as i128)),
            ("check_for_space", Json::Bool(self.check_for_space)),
            (
                "streams",
                Json::Array(
                    self.streams
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("name", Json::Str(s.name.clone())),
                                (
                                    "mu",
                                    Json::Array(vec![
                                        Json::Int(s.mu.numer()),
                                        Json::Int(s.mu.denom()),
                                    ]),
                                ),
                                ("eta_in", Json::Int(s.eta_in as i128)),
                                ("eta_out", Json::Int(s.eta_out as i128)),
                                ("reconfig", Json::Int(s.reconfig as i128)),
                                ("input_capacity", Json::Int(s.input_capacity as i128)),
                                ("output_capacity", Json::Int(s.output_capacity as i128)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "processors",
                Json::Array(
                    self.processors
                        .iter()
                        .map(|p| {
                            let mut pairs = vec![("name", Json::Str(p.name.clone()))];
                            if let Some(d) = p.declared_period {
                                pairs.push(("declared_period", Json::Int(d as i128)));
                            }
                            pairs.push((
                                "tasks",
                                Json::Array(
                                    p.tasks
                                        .iter()
                                        .map(|t| {
                                            let mut tp = vec![
                                                ("name", Json::Str(t.name.clone())),
                                                ("budget", Json::Int(t.budget as i128)),
                                            ];
                                            if let Some(i) = t.required_interval {
                                                tp.push((
                                                    "required_interval",
                                                    Json::Int(i as i128),
                                                ));
                                            }
                                            Json::obj(tp)
                                        })
                                        .collect(),
                                ),
                            ));
                            Json::obj(pairs)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Serialise to compact JSON text.
    pub fn to_json_text(&self) -> String {
        self.to_json().to_text()
    }

    /// Parse a spec from the JSON produced by [`DeploySpec::to_json_text`].
    pub fn from_json_text(text: &str) -> Result<DeploySpec, String> {
        let v = json::parse(text)?;
        let str_field = |v: &Json, k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {k:?}"))
        };
        let u64_field = |v: &Json, k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing integer field {k:?}"))
        };
        let chain = v
            .get("chain")
            .and_then(Json::as_array)
            .ok_or("missing chain")?
            .iter()
            .map(|c| {
                Ok(ChainStage {
                    name: str_field(c, "name")?,
                    rho: u64_field(c, "rho")?,
                })
            })
            .collect::<Result<_, String>>()?;
        let streams = v
            .get("streams")
            .and_then(Json::as_array)
            .ok_or("missing streams")?
            .iter()
            .map(|s| {
                let mu = s
                    .get("mu")
                    .and_then(Json::as_array)
                    .filter(|a| a.len() == 2)
                    .ok_or("stream without mu [num, den]")?;
                let num = mu[0].as_int().ok_or("bad mu numerator")?;
                let den = mu[1].as_int().ok_or("bad mu denominator")?;
                if den == 0 {
                    return Err("mu denominator is zero".to_string());
                }
                Ok(StreamDeploy {
                    name: str_field(s, "name")?,
                    mu: Rational::new(num, den),
                    eta_in: u64_field(s, "eta_in")?,
                    eta_out: u64_field(s, "eta_out")?,
                    reconfig: u64_field(s, "reconfig")?,
                    input_capacity: u64_field(s, "input_capacity")?,
                    output_capacity: u64_field(s, "output_capacity")?,
                })
            })
            .collect::<Result<_, String>>()?;
        let processors = match v.get("processors").and_then(Json::as_array) {
            None => Vec::new(),
            Some(ps) => ps
                .iter()
                .map(|p| {
                    let tasks = p
                        .get("tasks")
                        .and_then(Json::as_array)
                        .unwrap_or(&[])
                        .iter()
                        .map(|t| {
                            Ok(TaskDeploy {
                                name: str_field(t, "name")?,
                                budget: u64_field(t, "budget")?,
                                required_interval: t
                                    .get("required_interval")
                                    .and_then(Json::as_u64),
                            })
                        })
                        .collect::<Result<_, String>>()?;
                    Ok(ProcessorDeploy {
                        name: str_field(p, "name")?,
                        declared_period: p.get("declared_period").and_then(Json::as_u64),
                        tasks,
                    })
                })
                .collect::<Result<_, String>>()?,
        };
        Ok(DeploySpec {
            name: str_field(&v, "name")?,
            chain,
            epsilon: u64_field(&v, "epsilon")?,
            delta: u64_field(&v, "delta")?,
            ni_depth: u64_field(&v, "ni_depth")? as u32,
            check_for_space: v
                .get("check_for_space")
                .and_then(Json::as_bool)
                .unwrap_or(true),
            streams,
            processors,
        })
    }
}

// ---------------------------------------------------------------------------
// Presets matching the repository's experiment harnesses.
// ---------------------------------------------------------------------------

impl DeploySpec {
    /// The Fig. 6 schedule demo of `fig6_schedule`: one stream, η = 6,
    /// ε = 3, ρ_A = 1, δ = 1, R = 12, α₀ = α₃ = 12, with a rate-matched μ
    /// exactly at the Eq. 5 boundary (η/γ = 6/36 = 1/6 samples/cycle).
    pub fn fig6() -> DeploySpec {
        DeploySpec {
            name: "fig6-schedule".into(),
            chain: vec![ChainStage {
                name: "vA".into(),
                rho: 1,
            }],
            epsilon: 3,
            delta: 1,
            ni_depth: 2,
            check_for_space: true,
            streams: vec![StreamDeploy {
                name: "s".into(),
                mu: Rational::new(1, 6),
                eta_in: 6,
                eta_out: 6,
                reconfig: 12,
                input_capacity: 12,
                output_capacity: 12,
            }],
            processors: vec![],
        }
    }

    /// The Fig. 9 counter-example platform of `fig9_shared_fifo`: two
    /// η = 16 streams over one accelerator; stream 1's output FIFO holds
    /// only 4 samples and is never drained. With `check_for_space` the
    /// block is (safely) never admitted; without it the block wedges the
    /// shared chain and head-of-line-blocks stream 0.
    pub fn fig9(check_for_space: bool) -> DeploySpec {
        let stream = |name: &str, out_cap: u64| StreamDeploy {
            name: name.into(),
            mu: Rational::new(1, 8),
            eta_in: 16,
            eta_out: 16,
            reconfig: 10,
            input_capacity: 4096,
            output_capacity: out_cap,
        };
        DeploySpec {
            name: if check_for_space {
                "fig9-space-check-enabled".into()
            } else {
                "fig9-space-check-disabled".into()
            },
            chain: vec![ChainStage {
                name: "acc".into(),
                rho: 1,
            }],
            epsilon: 2,
            delta: 1,
            ni_depth: 2,
            check_for_space,
            streams: vec![stream("s0", 1 << 16), stream("s1", 4)],
            processors: vec![],
        }
    }

    /// The laptop-scale PAL stereo decoder deployment of
    /// [`streamgate_core::PalSystemConfig::scaled_default`] /
    /// `pal_system_sim` — four streams over {CORDIC, FIR+8:1}, built
    /// exactly as `build_pal_system` wires it.
    pub fn pal_scaled() -> DeploySpec {
        DeploySpec::from_pal(&streamgate_core::PalSystemConfig::scaled_default())
    }

    /// A PAL deployment spec matching what
    /// [`streamgate_core::build_pal_system`] would wire for `cfg`.
    pub fn from_pal(cfg: &streamgate_core::PalSystemConfig) -> DeploySpec {
        let prob = cfg.sharing_problem();
        let cap_front = (cfg.etas[0] * 4).max(64);
        let cap_back = (cfg.etas[2] * 4).max(64);
        let caps_in = [cap_front, cap_front, cap_back * 2, cap_back * 2];
        // Front halves feed the back halves' input FIFOs; back halves feed
        // the audio FIFOs.
        let caps_out = [cap_back * 2, cap_back * 2, cap_back * 2, cap_back * 2];
        let streams = prob
            .streams
            .iter()
            .enumerate()
            .map(|(i, s)| StreamDeploy {
                name: s.name.clone(),
                mu: s.mu,
                eta_in: cfg.etas[i],
                eta_out: cfg.etas[i] / 8,
                reconfig: s.reconfig,
                input_capacity: caps_in[i],
                output_capacity: caps_out[i],
            })
            .collect();
        // The front end must emit one baseband sample every clock/fs
        // cycles; it owns its tile (period = its own budget).
        let fe_interval = (cfg.clock_hz as f64 / cfg.pal.fs) as u64;
        DeploySpec {
            name: "pal-decoder".into(),
            chain: vec![
                ChainStage {
                    name: "CORDIC".into(),
                    rho: 1,
                },
                ChainStage {
                    name: "FIR+D".into(),
                    rho: 1,
                },
            ],
            epsilon: cfg.epsilon,
            delta: cfg.delta,
            ni_depth: 2,
            check_for_space: true,
            streams,
            processors: vec![
                ProcessorDeploy {
                    name: "FE".into(),
                    declared_period: Some(1),
                    tasks: vec![TaskDeploy {
                        name: "pal-front-end".into(),
                        budget: 1,
                        required_interval: Some(fe_interval.max(1)),
                    }],
                },
                ProcessorDeploy {
                    name: "consumer".into(),
                    declared_period: Some(1),
                    tasks: vec![TaskDeploy {
                        name: "stereo-matrix".into(),
                        budget: 1,
                        required_interval: None,
                    }],
                },
            ],
        }
    }

    /// Build the cycle-level platform this spec describes (passthrough
    /// kernels, one per chain stage) — the simulation twin the differential
    /// tests validate analyzer verdicts against. Processor tiles are *not*
    /// built; validation harnesses pre-fill the input FIFOs instead.
    pub fn build_platform(&self) -> streamgate_core::BuiltSystem {
        use streamgate_core::{AccelDef, StreamDef, SystemSpec};
        use streamgate_platform::PassthroughKernel;
        let spec = SystemSpec {
            chain: self
                .chain
                .iter()
                .map(|c| AccelDef::new(c.name.clone(), c.rho))
                .collect(),
            epsilon: self.epsilon,
            delta: self.delta,
            ni_depth: self.ni_depth,
            streams: self
                .streams
                .iter()
                .map(|s| StreamDef {
                    name: s.name.clone(),
                    eta_in: s.eta_in as usize,
                    eta_out: s.eta_out as usize,
                    reconfig: s.reconfig,
                    kernels: self
                        .chain
                        .iter()
                        .map(|_| {
                            Box::new(PassthroughKernel)
                                as Box<dyn streamgate_platform::StreamKernel>
                        })
                        .collect(),
                    input_capacity: s.input_capacity as usize,
                    output_capacity: s.output_capacity as usize,
                })
                .collect(),
        };
        let mut built = streamgate_core::build_shared_system(spec);
        built.system.gateways[built.gateway].check_for_space = self.check_for_space;
        built
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_json_roundtrip() {
        for spec in [
            DeploySpec::fig6(),
            DeploySpec::fig9(false),
            DeploySpec::pal_scaled(),
        ] {
            let text = spec.to_json_text();
            let back = DeploySpec::from_json_text(&text).unwrap();
            assert_eq!(back, spec);
            assert_eq!(back.to_json_text(), text);
        }
    }

    #[test]
    fn pal_spec_matches_sharing_problem() {
        let cfg = streamgate_core::PalSystemConfig::scaled_default();
        let spec = DeploySpec::from_pal(&cfg);
        let prob = spec.sharing_problem();
        let reference = cfg.sharing_problem();
        assert_eq!(prob.params, reference.params);
        assert_eq!(prob.streams.len(), 4);
        for (a, b) in prob.streams.iter().zip(&reference.streams) {
            assert_eq!(a.mu, b.mu);
            assert_eq!(a.reconfig, b.reconfig);
        }
        assert_eq!(spec.etas(), cfg.etas.to_vec());
    }

    #[test]
    fn c0_is_chain_maximum() {
        let mut s = DeploySpec::fig6();
        assert_eq!(s.c0(), 3);
        s.chain.push(ChainStage {
            name: "slow".into(),
            rho: 9,
        });
        assert_eq!(s.c0(), 9);
        assert_eq!(s.rho_a(), 9);
    }

    #[test]
    fn build_platform_wires_streams_and_space_check() {
        let mut spec = DeploySpec::fig9(false);
        spec.streams[1].output_capacity = 64; // buildable but still unchecked
        let built = spec.build_platform();
        assert!(!built.system.gateways[built.gateway].check_for_space);
        assert_eq!(built.inputs.len(), 2);
        assert_eq!(built.system.accels.len(), 1);
    }
}
