//! The analyzable deployment description.
//!
//! [`DeploySpec`] is the static input of the analyzer: everything the rules
//! need to verify a gateway deployment *before* it runs — chain timing
//! (ε, ρ per stage, δ), NI depth, the check-for-space switch, per-stream
//! block sizes / rates / FIFO capacities, and the TDM slot tables of the
//! processor tiles. It deliberately mirrors [`streamgate_core::SystemSpec`]
//! (the run-time chain description of §IV-B) plus the analysis-only fields
//! that a support library knows but the built platform no longer exposes
//! (required rates μ_s, declared TDM periods).

use crate::json::{self, Json};
use streamgate_core::{GatewayParams, SharingProblem, StreamSpec};
use streamgate_ilp::Rational;

/// One accelerator stage of the shared chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainStage {
    /// Diagnostic name.
    pub name: String,
    /// Worst-case processing time per sample (ρ of this stage, cycles).
    pub rho: u64,
}

/// One stream multiplexed over the gateway pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamDeploy {
    /// Diagnostic name.
    pub name: String,
    /// Required throughput μ_s at the chain input, samples/cycle.
    pub mu: Rational,
    /// Block size η_s in input samples.
    pub eta_in: u64,
    /// Block size at the exit gateway in output samples (η_in divided by
    /// the chain's decimation factor; equal to η_in for rate-preserving
    /// chains).
    pub eta_out: u64,
    /// Reconfiguration time R_s per block, cycles.
    pub reconfig: u64,
    /// Input C-FIFO capacity α₀, samples.
    pub input_capacity: u64,
    /// Output C-FIFO capacity α₃, samples.
    pub output_capacity: u64,
    /// End-to-end latency budget (first input sample to last output
    /// sample of a block), cycles — checked by rule A10 when set.
    pub max_latency: Option<u64>,
}

/// One software task in a processor tile's TDM slot table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskDeploy {
    /// Diagnostic name.
    pub name: String,
    /// TDM budget: consecutive slots per replication interval.
    pub budget: u64,
    /// Hard production/consumption period of the task in cycles (a rate
    /// source that must emit one sample every `n` cycles), when it has one.
    pub required_interval: Option<u64>,
}

/// One processor tile with its TDM slot table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcessorDeploy {
    /// Diagnostic name.
    pub name: String,
    /// The replication interval the deployment *intends*; the actual
    /// interval is the sum of budgets, and a mismatch is flagged (A4).
    pub declared_period: Option<u64>,
    /// Tasks in slot order.
    pub tasks: Vec<TaskDeploy>,
}

/// One gateway pair of a multi-gateway deployment (Fig. 1 system scope).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GatewayDeploy {
    /// Diagnostic name.
    pub name: String,
    /// The accelerator chain this pair drives, in order. Must be empty
    /// when [`GatewayDeploy::shares_chain_with`] is set (the chain is the
    /// referenced pair's).
    pub chain: Vec<ChainStage>,
    /// When set, this pair owns no chain: it claims the physical chain of
    /// the referenced *earlier* gateway block by block (Fig. 10 — more
    /// logical uses than physical accelerators).
    pub shares_chain_with: Option<usize>,
    /// Streams multiplexed over this pair.
    pub streams: Vec<StreamDeploy>,
    /// Reconfiguration slot `(offset, length)` on the shared
    /// configuration bus, within [`DeploySpec::config_bus_period`] —
    /// checked by rule A9 when set.
    pub config_slot: Option<(u64, u64)>,
}

/// A user-chosen ring placement overriding the default interleaved
/// [`DeploySpec::ring_layout`]: the total station count plus, per gateway,
/// its entry station, exit station, and chain stations in chain order.
/// Gateways sharing a chain must list identical chain stations (they alias
/// the same physical tiles). Link-id assignment is not part of the map —
/// it stays the deterministic scheme of [`RingLayout`], which never
/// depends on where stations sit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StationMap {
    /// Total ring stations (may exceed the number of placed tiles; spare
    /// stations are plain forwarding hops).
    pub nodes: usize,
    /// Entry station per gateway, in gateway order.
    pub entries: Vec<usize>,
    /// Exit station per gateway, in gateway order.
    pub exits: Vec<usize>,
    /// Accelerator stations per gateway, in chain order.
    pub chain_nodes: Vec<Vec<usize>>,
}

/// One declared operating mode of a stream: a name plus the complete
/// per-stream configuration (rate μ, block sizes η, reconfiguration
/// window, buffer sizing) the stream runs with while in that mode.
///
/// The `config.name` field is ignored on substitution — a mode always
/// keeps the identity of the stream it belongs to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamMode {
    /// Mode name, unique within the owning [`StreamModes`] declaration.
    pub name: String,
    /// The stream configuration in force while this mode is active.
    pub config: StreamDeploy,
}

/// The multi-mode declaration of one stream: the set of operating modes
/// it may run in and (optionally) which mode-to-mode transitions are
/// allowed.
///
/// Rules A11–A13 analyse these declarations statically; the
/// `ModeSwitch` admission delta executes them at run time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamModes {
    /// Gateway index of the owning stream (0 in the single-gateway shape).
    pub gateway: usize,
    /// Name of the stream these modes belong to.
    pub stream: String,
    /// Declared modes, in declaration order.
    pub modes: Vec<StreamMode>,
    /// Allowed transitions as `(from, to)` mode-name pairs. Empty means
    /// every mode can switch to every other mode.
    pub transitions: Vec<(String, String)>,
}

impl StreamModes {
    /// Look up a declared mode by name.
    pub fn mode(&self, name: &str) -> Option<&StreamMode> {
        self.modes.iter().find(|m| m.name == name)
    }

    /// True when a switch from mode `from` to mode `to` is allowed by the
    /// declared transition set (empty set = fully connected).
    pub fn transition_allowed(&self, from: &str, to: &str) -> bool {
        self.transitions.is_empty() || self.transitions.iter().any(|(f, t)| f == from && t == to)
    }
}

/// A complete static deployment description — the analyzer input.
///
/// Two shapes share this type:
///
/// * **single-gateway** (the PR-3 format): [`DeploySpec::gateways`] is
///   empty and the top-level [`DeploySpec::chain`] / [`DeploySpec::streams`]
///   describe the one pair;
/// * **multi-gateway**: [`DeploySpec::gateways`] is non-empty and fully
///   describes every pair; the top-level `chain`/`streams` must then be
///   empty. [`DeploySpec::gateway_views`] presents both shapes uniformly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeploySpec {
    /// Deployment name (reported in diagnostics).
    pub name: String,
    /// The shared accelerator chain, in order (single-gateway shape).
    pub chain: Vec<ChainStage>,
    /// Entry-gateway DMA time per sample, ε (cycles).
    pub epsilon: u64,
    /// Exit-gateway copy time per sample, δ (cycles).
    pub delta: u64,
    /// Network-interface buffer depth (initial credits; 2 in the paper).
    pub ni_depth: u32,
    /// Whether the entry gateway performs the §V-G check-for-space
    /// admission test (Fig. 9).
    pub check_for_space: bool,
    /// The streams multiplexed over the chain (single-gateway shape).
    pub streams: Vec<StreamDeploy>,
    /// Processor tiles feeding/draining the streams.
    pub processors: Vec<ProcessorDeploy>,
    /// Gateway pairs of a multi-gateway deployment (empty in the
    /// single-gateway shape).
    pub gateways: Vec<GatewayDeploy>,
    /// Replication period of the shared configuration bus's TDM table,
    /// cycles — the frame the per-gateway [`GatewayDeploy::config_slot`]s
    /// live in (rule A9).
    pub config_bus_period: Option<u64>,
    /// User-chosen ring placement; `None` selects the default interleaved
    /// layout. Validated by [`DeploySpec::gateway_structure_errors`].
    pub station_map: Option<StationMap>,
    /// Multi-mode declarations (rules A11–A13); empty when every stream
    /// is single-mode.
    pub modes: Vec<StreamModes>,
}

/// A uniform per-gateway view over both [`DeploySpec`] shapes: rules that
/// check one pair at a time iterate views and never care which shape the
/// spec came in.
#[derive(Clone, Debug)]
pub struct GatewayView<'a> {
    /// Gateway index within the deployment (0 in the single-gateway shape).
    pub index: usize,
    /// Diagnostic name.
    pub name: &'a str,
    /// The physical chain this pair drives (resolved through sharing).
    pub chain: &'a [ChainStage],
    /// Index of the gateway owning the physical chain — pairs with equal
    /// `group` share one chain and serialise their blocks (Fig. 10).
    pub group: usize,
    /// Streams multiplexed over this pair.
    pub streams: &'a [StreamDeploy],
    /// Configuration-bus slot, when declared.
    pub config_slot: Option<(u64, u64)>,
    /// Chain timing parameters (ε, this chain's ρ_A, δ).
    pub params: GatewayParams,
}

impl GatewayView<'_> {
    /// `c0 = max(ε, ρ_A, δ)` (Eq. 8) of this pair's chain.
    pub fn c0(&self) -> u64 {
        self.params.c0()
    }

    /// The Eq. 5–9 sharing problem of this pair in isolation.
    pub fn sharing_problem(&self) -> SharingProblem {
        SharingProblem {
            params: self.params,
            streams: self
                .streams
                .iter()
                .map(|s| StreamSpec {
                    name: s.name.clone(),
                    mu: s.mu,
                    reconfig: s.reconfig,
                })
                .collect(),
        }
    }

    /// The configured block sizes, in stream order.
    pub fn etas(&self) -> Vec<u64> {
        self.streams.iter().map(|s| s.eta_in).collect()
    }
}

/// The deterministic ring placement of a multi-gateway deployment — the
/// single wiring truth shared by [`DeploySpec::build_multi_platform`] and
/// rule A7's path arithmetic.
///
/// Stations are interleaved the way Fig. 1 draws the system: all entry
/// gateways first (`0..G`), then every owned chain's accelerators back to
/// back, then the exit gateways — so distinct pairs' ring paths overlap
/// and contention is real rather than laid out away. Data flits travel in
/// increasing-station direction; *hop `i`* names the data-ring edge from
/// station `i` to `i + 1` (mod `nodes`). Credits travel the opposite
/// rotation; *credit hop `i`* names the edge from station `i` to `i − 1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingLayout {
    /// Total ring stations.
    pub nodes: usize,
    /// Entry station per gateway.
    pub entries: Vec<usize>,
    /// Exit station per gateway.
    pub exits: Vec<usize>,
    /// Accelerator stations per gateway (pairs sharing a chain alias the
    /// same stations).
    pub chain_nodes: Vec<Vec<usize>>,
    /// Entry-DMA stream id per gateway (`2·g`).
    pub in_links: Vec<u32>,
    /// Exit stream id per gateway (`2·g + 1`).
    pub out_links: Vec<u32>,
    /// Inter-accelerator stream ids per gateway. Fixed per chain *group*
    /// (hop `j` of the chain owned by gateway `X` is
    /// `1_000_000 + 1000·X + j`): a shared chain's interior links are
    /// never retargeted, only its boundary links are.
    pub mid_links: Vec<Vec<u32>>,
}

impl RingLayout {
    /// The data-ring segments `(src, dst)` gateway `g`'s block traffic
    /// crosses: entry → first accelerator, accelerator → accelerator,
    /// last accelerator → exit.
    pub fn segments(&self, g: usize) -> Vec<(usize, usize)> {
        let ch = &self.chain_nodes[g];
        let mut v = Vec::new();
        if ch.is_empty() {
            return v;
        }
        v.push((self.entries[g], ch[0]));
        for w in ch.windows(2) {
            v.push((w[0], w[1]));
        }
        v.push((ch[ch.len() - 1], self.exits[g]));
        v
    }

    /// The data-ring hops crossed by segment `(src, dst)`.
    pub fn data_hops(&self, src: usize, dst: usize) -> Vec<usize> {
        let mut hops = Vec::new();
        let mut i = src;
        while i != dst {
            hops.push(i);
            i = (i + 1) % self.nodes;
        }
        hops
    }

    /// The credit-ring hops crossed by the credit flow mirroring data
    /// segment `(src, dst)`: one credit travels `dst → src` against the
    /// data rotation for every data flit delivered.
    pub fn credit_hops(&self, src: usize, dst: usize) -> Vec<usize> {
        let mut hops = Vec::new();
        let mut i = dst;
        while i != src {
            hops.push(i);
            i = (i + self.nodes - 1) % self.nodes;
        }
        hops
    }
}

/// A built multi-gateway platform with handles to its observation points
/// (the system-scope analogue of [`streamgate_core::BuiltSystem`]).
pub struct MultiBuiltSystem {
    /// The simulated MPSoC.
    pub system: streamgate_platform::System,
    /// Per-spec-gateway index into `system.gateways`.
    pub gateways: Vec<usize>,
    /// Input C-FIFO handles: `inputs[g][s]` for gateway `g`, local stream `s`.
    pub inputs: Vec<Vec<streamgate_platform::FifoId>>,
    /// Output C-FIFO handles, mirrored.
    pub outputs: Vec<Vec<streamgate_platform::FifoId>>,
}

/// Builders that can export the [`DeploySpec`] describing what they wire,
/// so deployments constructed in code get the same static analysis as
/// hand-written specs (and the analyzer never drifts from the builder).
pub trait ToDeploySpec {
    /// The analyzable deployment spec matching this builder's wiring.
    fn to_deploy_spec(&self) -> DeploySpec;
}

impl ToDeploySpec for streamgate_core::PalSystemConfig {
    fn to_deploy_spec(&self) -> DeploySpec {
        DeploySpec::from_pal(self)
    }
}

impl DeploySpec {
    /// Worst-case per-sample accelerator time over the chain,
    /// ρ_A = max stage ρ.
    pub fn rho_a(&self) -> u64 {
        self.chain.iter().map(|s| s.rho).max().unwrap_or(0)
    }

    /// Whether this spec uses the multi-gateway shape.
    pub fn is_multi(&self) -> bool {
        !self.gateways.is_empty()
    }

    /// The chain group gateway `i` belongs to: the referenced owner for a
    /// valid `shares_chain_with`, itself otherwise (structural defects are
    /// reported by [`DeploySpec::gateway_structure_errors`], not here).
    fn resolve_group(&self, i: usize) -> usize {
        match self.gateways[i].shares_chain_with {
            Some(o) if o < i && self.gateways[o].shares_chain_with.is_none() => o,
            _ => i,
        }
    }

    /// Uniform per-gateway views over both shapes. A single-gateway spec
    /// yields exactly one view built from the top-level fields.
    pub fn gateway_views(&self) -> Vec<GatewayView<'_>> {
        if self.gateways.is_empty() {
            return vec![GatewayView {
                index: 0,
                name: &self.name,
                chain: &self.chain,
                group: 0,
                streams: &self.streams,
                config_slot: None,
                params: self.gateway_params(),
            }];
        }
        self.gateways
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let group = self.resolve_group(i);
                let chain = &self.gateways[group].chain[..];
                GatewayView {
                    index: i,
                    name: &g.name,
                    chain,
                    group,
                    streams: &g.streams,
                    config_slot: g.config_slot,
                    params: GatewayParams {
                        epsilon: self.epsilon,
                        rho_a: chain.iter().map(|s| s.rho).max().unwrap_or(0),
                        delta: self.delta,
                    },
                }
            })
            .collect()
    }

    /// Flat `(gateway index, stream)` enumeration across all pairs, in
    /// gateway-then-stream order — the global stream indexing used by
    /// diagnostics and [`crate::Report`] bounds.
    pub fn all_streams(&self) -> Vec<(usize, &StreamDeploy)> {
        if self.gateways.is_empty() {
            return self.streams.iter().map(|s| (0, s)).collect();
        }
        self.gateways
            .iter()
            .enumerate()
            .flat_map(|(i, g)| g.streams.iter().map(move |s| (i, s)))
            .collect()
    }

    /// Structural defects of the multi-gateway section, as `(gateway
    /// index, message)` pairs — empty for well-formed specs (and always
    /// empty for the single-gateway shape).
    pub fn gateway_structure_errors(&self) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for (i, g) in self.gateways.iter().enumerate() {
            match g.shares_chain_with {
                Some(o) if o >= i => out.push((
                    i,
                    format!("shares_chain_with {o} must reference an earlier gateway"),
                )),
                Some(o) if !g.chain.is_empty() => out.push((
                    i,
                    format!("declares its own chain yet shares_chain_with {o}"),
                )),
                Some(o) if self.gateways[o].shares_chain_with.is_some() => out.push((
                    i,
                    format!("shares_chain_with {o}, which does not own a chain"),
                )),
                None if g.chain.is_empty() => {
                    out.push((i, "has neither a chain nor shares_chain_with".into()))
                }
                _ => {}
            }
        }
        if !self.gateways.is_empty() && (!self.chain.is_empty() || !self.streams.is_empty()) {
            out.push((
                0,
                "multi-gateway specs must leave the top-level chain/streams empty".into(),
            ));
        }
        if let Some(m) = &self.station_map {
            self.station_map_errors(m, &mut out);
        }
        out
    }

    /// Validate a user [`StationMap`] against this spec's gateway shapes,
    /// appending `(gateway index, message)` defects to `out`.
    fn station_map_errors(&self, m: &StationMap, out: &mut Vec<(usize, String)>) {
        let views = self.gateway_views();
        let g = views.len();
        if m.entries.len() != g || m.exits.len() != g || m.chain_nodes.len() != g {
            out.push((
                0,
                format!(
                    "station_map shape mismatch: {} gateways but {} entries, \
                     {} exits, {} chain lists",
                    g,
                    m.entries.len(),
                    m.exits.len(),
                    m.chain_nodes.len()
                ),
            ));
            return;
        }
        let mut used: Vec<usize> = Vec::new();
        for v in &views {
            if m.chain_nodes[v.index].len() != v.chain.len() {
                out.push((
                    v.index,
                    format!(
                        "station_map lists {} chain stations for a {}-stage chain",
                        m.chain_nodes[v.index].len(),
                        v.chain.len()
                    ),
                ));
                continue;
            }
            if v.group != v.index && m.chain_nodes[v.index] != m.chain_nodes[v.group] {
                out.push((
                    v.index,
                    format!(
                        "station_map must alias the shared chain's stations of gateway {}",
                        v.group
                    ),
                ));
            }
            let mut placed = vec![m.entries[v.index], m.exits[v.index]];
            if v.group == v.index {
                placed.extend(&m.chain_nodes[v.index]);
            }
            for &s in &placed {
                if s >= m.nodes {
                    out.push((
                        v.index,
                        format!("station_map places station {s} outside 0..{}", m.nodes),
                    ));
                } else if used.contains(&s) {
                    out.push((v.index, format!("station_map reuses station {s}")));
                } else {
                    used.push(s);
                }
            }
        }
    }

    /// The ring placement of this deployment (any shape): the user
    /// [`DeploySpec::station_map`] when one is set and well-formed, the
    /// deterministic interleaved placement otherwise.
    pub fn ring_layout(&self) -> RingLayout {
        let views = self.gateway_views();
        let g = views.len();
        let mid_links: Vec<Vec<u32>> = views
            .iter()
            .map(|v| {
                assert!(
                    v.chain.len() <= 1000,
                    "chain too long for the link-id scheme"
                );
                (0..v.chain.len().saturating_sub(1))
                    .map(|j| (1_000_000 + 1000 * v.group + j) as u32)
                    .collect()
            })
            .collect();
        let in_links: Vec<u32> = (0..g).map(|i| 2 * i as u32).collect();
        let out_links: Vec<u32> = (0..g).map(|i| 2 * i as u32 + 1).collect();
        if let Some(m) = &self.station_map {
            let mut errs = Vec::new();
            self.station_map_errors(m, &mut errs);
            if errs.is_empty() {
                // The group's owner places the chain; sharers alias it
                // (validation already forced the lists equal).
                let chain_nodes = views
                    .iter()
                    .map(|v| m.chain_nodes[v.group].clone())
                    .collect();
                return RingLayout {
                    nodes: m.nodes,
                    entries: m.entries.clone(),
                    exits: m.exits.clone(),
                    chain_nodes,
                    in_links,
                    out_links,
                    mid_links,
                };
            }
        }
        let mut next = g;
        let mut owned: Vec<Vec<usize>> = vec![Vec::new(); g];
        for v in &views {
            if v.group == v.index {
                owned[v.index] = (next..next + v.chain.len()).collect();
                next += v.chain.len();
            }
        }
        let chain_nodes: Vec<Vec<usize>> = views.iter().map(|v| owned[v.group].clone()).collect();
        RingLayout {
            nodes: next + g,
            entries: (0..g).collect(),
            exits: (0..g).map(|i| next + i).collect(),
            chain_nodes,
            in_links,
            out_links,
            mid_links,
        }
    }

    /// `c0 = max(ε, ρ_A, δ)` (Eq. 8).
    pub fn c0(&self) -> u64 {
        self.gateway_params().c0()
    }

    /// The chain timing parameters.
    pub fn gateway_params(&self) -> GatewayParams {
        GatewayParams {
            epsilon: self.epsilon,
            rho_a: self.rho_a(),
            delta: self.delta,
        }
    }

    /// The Eq. 5–9 sharing problem this deployment instantiates.
    pub fn sharing_problem(&self) -> SharingProblem {
        SharingProblem {
            params: self.gateway_params(),
            streams: self
                .streams
                .iter()
                .map(|s| StreamSpec {
                    name: s.name.clone(),
                    mu: s.mu,
                    reconfig: s.reconfig,
                })
                .collect(),
        }
    }

    /// The configured block sizes, in stream order.
    pub fn etas(&self) -> Vec<u64> {
        self.streams.iter().map(|s| s.eta_in).collect()
    }

    /// Serialise to a JSON tree (machine-readable spec interchange).
    ///
    /// Multi-gateway-only keys (`gateways`, `config_bus_period`, per-stream
    /// `max_latency`) are omitted when empty/unset, so single-gateway specs
    /// re-emit byte-identically to the PR-3 format.
    pub fn to_json(&self) -> Json {
        let mut top = vec![
            ("name", Json::Str(self.name.clone())),
            ("chain", chain_to_json(&self.chain)),
            ("epsilon", Json::Int(self.epsilon as i128)),
            ("delta", Json::Int(self.delta as i128)),
            ("ni_depth", Json::Int(self.ni_depth as i128)),
            ("check_for_space", Json::Bool(self.check_for_space)),
            ("streams", streams_to_json(&self.streams)),
            (
                "processors",
                Json::Array(
                    self.processors
                        .iter()
                        .map(|p| {
                            let mut pairs = vec![("name", Json::Str(p.name.clone()))];
                            if let Some(d) = p.declared_period {
                                pairs.push(("declared_period", Json::Int(d as i128)));
                            }
                            pairs.push((
                                "tasks",
                                Json::Array(
                                    p.tasks
                                        .iter()
                                        .map(|t| {
                                            let mut tp = vec![
                                                ("name", Json::Str(t.name.clone())),
                                                ("budget", Json::Int(t.budget as i128)),
                                            ];
                                            if let Some(i) = t.required_interval {
                                                tp.push((
                                                    "required_interval",
                                                    Json::Int(i as i128),
                                                ));
                                            }
                                            Json::obj(tp)
                                        })
                                        .collect(),
                                ),
                            ));
                            Json::obj(pairs)
                        })
                        .collect(),
                ),
            ),
        ];
        if !self.gateways.is_empty() {
            top.push((
                "gateways",
                Json::Array(
                    self.gateways
                        .iter()
                        .map(|g| {
                            let mut pairs = vec![
                                ("name", Json::Str(g.name.clone())),
                                ("chain", chain_to_json(&g.chain)),
                            ];
                            if let Some(o) = g.shares_chain_with {
                                pairs.push(("shares_chain_with", Json::Int(o as i128)));
                            }
                            pairs.push(("streams", streams_to_json(&g.streams)));
                            if let Some((off, len)) = g.config_slot {
                                pairs.push((
                                    "config_slot",
                                    Json::Array(vec![
                                        Json::Int(off as i128),
                                        Json::Int(len as i128),
                                    ]),
                                ));
                            }
                            Json::obj(pairs)
                        })
                        .collect(),
                ),
            ));
        }
        if let Some(p) = self.config_bus_period {
            top.push(("config_bus_period", Json::Int(p as i128)));
        }
        if let Some(m) = &self.station_map {
            let arr = |v: &[usize]| Json::Array(v.iter().map(|&s| Json::Int(s as i128)).collect());
            top.push((
                "station_map",
                Json::obj(vec![
                    ("nodes", Json::Int(m.nodes as i128)),
                    ("entries", arr(&m.entries)),
                    ("exits", arr(&m.exits)),
                    (
                        "chain_nodes",
                        Json::Array(m.chain_nodes.iter().map(|c| arr(c)).collect()),
                    ),
                ]),
            ));
        }
        if !self.modes.is_empty() {
            top.push((
                "modes",
                Json::Array(
                    self.modes
                        .iter()
                        .map(|m| {
                            Json::obj(vec![
                                ("gateway", Json::Int(m.gateway as i128)),
                                ("stream", Json::Str(m.stream.clone())),
                                (
                                    "modes",
                                    Json::Array(
                                        m.modes
                                            .iter()
                                            .map(|md| {
                                                Json::obj(vec![
                                                    ("name", Json::Str(md.name.clone())),
                                                    ("config", stream_to_json(&md.config)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                                (
                                    "transitions",
                                    Json::Array(
                                        m.transitions
                                            .iter()
                                            .map(|(f, t)| {
                                                Json::Array(vec![
                                                    Json::Str(f.clone()),
                                                    Json::Str(t.clone()),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Json::obj(top)
    }

    /// Serialise to compact JSON text.
    pub fn to_json_text(&self) -> String {
        self.to_json().to_text()
    }

    /// Parse a spec from the JSON produced by [`DeploySpec::to_json_text`]
    /// (either shape; PR-3 single-gateway documents still parse).
    pub fn from_json_text(text: &str) -> Result<DeploySpec, String> {
        let v = json::parse(text)?;
        let chain = chain_from_json(v.get("chain").ok_or("missing chain")?)?;
        let streams = streams_from_json(v.get("streams").ok_or("missing streams")?)?;
        let processors = match v.get("processors").and_then(Json::as_array) {
            None => Vec::new(),
            Some(ps) => ps
                .iter()
                .map(|p| {
                    let tasks = p
                        .get("tasks")
                        .and_then(Json::as_array)
                        .unwrap_or(&[])
                        .iter()
                        .map(|t| {
                            Ok(TaskDeploy {
                                name: j_str(t, "name")?,
                                budget: j_u64(t, "budget")?,
                                required_interval: t
                                    .get("required_interval")
                                    .and_then(Json::as_u64),
                            })
                        })
                        .collect::<Result<_, String>>()?;
                    Ok(ProcessorDeploy {
                        name: j_str(p, "name")?,
                        declared_period: p.get("declared_period").and_then(Json::as_u64),
                        tasks,
                    })
                })
                .collect::<Result<_, String>>()?,
        };
        let gateways = match v.get("gateways").and_then(Json::as_array) {
            None => Vec::new(),
            Some(gs) => gs
                .iter()
                .map(|g| {
                    let config_slot = match g.get("config_slot").and_then(Json::as_array) {
                        None => None,
                        Some(a) if a.len() == 2 => {
                            let off = a[0].as_u64().ok_or("bad config_slot offset")?;
                            let len = a[1].as_u64().ok_or("bad config_slot length")?;
                            Some((off, len))
                        }
                        Some(_) => return Err("config_slot must be [offset, length]".into()),
                    };
                    Ok(GatewayDeploy {
                        name: j_str(g, "name")?,
                        chain: chain_from_json(g.get("chain").ok_or("gateway without chain")?)?,
                        shares_chain_with: g
                            .get("shares_chain_with")
                            .and_then(Json::as_u64)
                            .map(|o| o as usize),
                        streams: streams_from_json(
                            g.get("streams").ok_or("gateway without streams")?,
                        )?,
                        config_slot,
                    })
                })
                .collect::<Result<_, String>>()?,
        };
        let station_map = match v.get("station_map") {
            None => None,
            Some(m) => {
                let list = |k: &str| -> Result<Vec<usize>, String> {
                    m.get(k)
                        .and_then(Json::as_array)
                        .ok_or_else(|| format!("station_map without {k} array"))?
                        .iter()
                        .map(|s| s.as_u64().map(|x| x as usize).ok_or("bad station".into()))
                        .collect()
                };
                Some(StationMap {
                    nodes: j_u64(m, "nodes")? as usize,
                    entries: list("entries")?,
                    exits: list("exits")?,
                    chain_nodes: m
                        .get("chain_nodes")
                        .and_then(Json::as_array)
                        .ok_or("station_map without chain_nodes array")?
                        .iter()
                        .map(|c| {
                            c.as_array()
                                .ok_or("chain_nodes entry must be an array")?
                                .iter()
                                .map(|s| s.as_u64().map(|x| x as usize).ok_or("bad station".into()))
                                .collect()
                        })
                        .collect::<Result<_, String>>()?,
                })
            }
        };
        let modes = match v.get("modes").and_then(Json::as_array) {
            None => Vec::new(),
            Some(ms) => ms
                .iter()
                .map(|m| {
                    let modes = m
                        .get("modes")
                        .and_then(Json::as_array)
                        .ok_or("mode declaration without modes array")?
                        .iter()
                        .map(|md| {
                            Ok(StreamMode {
                                name: j_str(md, "name")?,
                                config: stream_from_json(
                                    md.get("config").ok_or("mode without config")?,
                                )?,
                            })
                        })
                        .collect::<Result<_, String>>()?;
                    let transitions = match m.get("transitions").and_then(Json::as_array) {
                        None => Vec::new(),
                        Some(ts) => ts
                            .iter()
                            .map(|t| {
                                let pair = t
                                    .as_array()
                                    .filter(|a| a.len() == 2)
                                    .ok_or("transition must be [from, to]")?;
                                let f = pair[0].as_str().ok_or("bad transition from")?;
                                let to = pair[1].as_str().ok_or("bad transition to")?;
                                Ok((f.to_string(), to.to_string()))
                            })
                            .collect::<Result<_, String>>()?,
                    };
                    Ok(StreamModes {
                        gateway: j_u64(m, "gateway")? as usize,
                        stream: j_str(m, "stream")?,
                        modes,
                        transitions,
                    })
                })
                .collect::<Result<_, String>>()?,
        };
        Ok(DeploySpec {
            name: j_str(&v, "name")?,
            chain,
            epsilon: j_u64(&v, "epsilon")?,
            delta: j_u64(&v, "delta")?,
            ni_depth: j_u64(&v, "ni_depth")? as u32,
            check_for_space: v
                .get("check_for_space")
                .and_then(Json::as_bool)
                .unwrap_or(true),
            streams,
            processors,
            gateways,
            config_bus_period: v.get("config_bus_period").and_then(Json::as_u64),
            station_map,
            modes,
        })
    }
}

fn j_str(v: &Json, k: &str) -> Result<String, String> {
    v.get(k)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {k:?}"))
}

fn j_u64(v: &Json, k: &str) -> Result<u64, String> {
    v.get(k)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer field {k:?}"))
}

fn chain_to_json(chain: &[ChainStage]) -> Json {
    Json::Array(
        chain
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("name", Json::Str(c.name.clone())),
                    ("rho", Json::Int(c.rho as i128)),
                ])
            })
            .collect(),
    )
}

fn streams_to_json(streams: &[StreamDeploy]) -> Json {
    Json::Array(streams.iter().map(stream_to_json).collect())
}

/// Serialise one stream object of the spec-JSON `streams` encoding —
/// shared with the per-mode `config` encoding.
fn stream_to_json(s: &StreamDeploy) -> Json {
    let mut pairs = vec![
        ("name", Json::Str(s.name.clone())),
        (
            "mu",
            Json::Array(vec![Json::Int(s.mu.numer()), Json::Int(s.mu.denom())]),
        ),
        ("eta_in", Json::Int(s.eta_in as i128)),
        ("eta_out", Json::Int(s.eta_out as i128)),
        ("reconfig", Json::Int(s.reconfig as i128)),
        ("input_capacity", Json::Int(s.input_capacity as i128)),
        ("output_capacity", Json::Int(s.output_capacity as i128)),
    ];
    if let Some(l) = s.max_latency {
        pairs.push(("max_latency", Json::Int(l as i128)));
    }
    Json::obj(pairs)
}

fn chain_from_json(v: &Json) -> Result<Vec<ChainStage>, String> {
    v.as_array()
        .ok_or("chain must be an array")?
        .iter()
        .map(|c| {
            Ok(ChainStage {
                name: j_str(c, "name")?,
                rho: j_u64(c, "rho")?,
            })
        })
        .collect()
}

fn streams_from_json(v: &Json) -> Result<Vec<StreamDeploy>, String> {
    v.as_array()
        .ok_or("streams must be an array")?
        .iter()
        .map(stream_from_json)
        .collect()
}

/// Parse one stream object of the spec-JSON `streams` encoding — shared
/// with the `--delta` admission-script parser.
pub(crate) fn stream_from_json(s: &Json) -> Result<StreamDeploy, String> {
    let mu = s
        .get("mu")
        .and_then(Json::as_array)
        .filter(|a| a.len() == 2)
        .ok_or("stream without mu [num, den]")?;
    let num = mu[0].as_int().ok_or("bad mu numerator")?;
    let den = mu[1].as_int().ok_or("bad mu denominator")?;
    if den == 0 {
        return Err("mu denominator is zero".to_string());
    }
    Ok(StreamDeploy {
        name: j_str(s, "name")?,
        mu: Rational::new(num, den),
        eta_in: j_u64(s, "eta_in")?,
        eta_out: j_u64(s, "eta_out")?,
        reconfig: j_u64(s, "reconfig")?,
        input_capacity: j_u64(s, "input_capacity")?,
        output_capacity: j_u64(s, "output_capacity")?,
        max_latency: s.get("max_latency").and_then(Json::as_u64),
    })
}

// ---------------------------------------------------------------------------
// Presets matching the repository's experiment harnesses.
// ---------------------------------------------------------------------------

impl DeploySpec {
    /// The Fig. 6 schedule demo of `fig6_schedule`: one stream, η = 6,
    /// ε = 3, ρ_A = 1, δ = 1, R = 12, α₀ = α₃ = 12, with a rate-matched μ
    /// exactly at the Eq. 5 boundary (η/γ = 6/36 = 1/6 samples/cycle).
    pub fn fig6() -> DeploySpec {
        DeploySpec {
            name: "fig6-schedule".into(),
            chain: vec![ChainStage {
                name: "vA".into(),
                rho: 1,
            }],
            epsilon: 3,
            delta: 1,
            ni_depth: 2,
            check_for_space: true,
            streams: vec![StreamDeploy {
                name: "s".into(),
                mu: Rational::new(1, 6),
                eta_in: 6,
                eta_out: 6,
                reconfig: 12,
                input_capacity: 12,
                output_capacity: 12,
                max_latency: None,
            }],
            processors: vec![],
            gateways: vec![],
            config_bus_period: None,
            station_map: None,
            modes: vec![],
        }
    }

    /// The Fig. 9 counter-example platform of `fig9_shared_fifo`: two
    /// η = 16 streams over one accelerator; stream 1's output FIFO holds
    /// only 4 samples and is never drained. With `check_for_space` the
    /// block is (safely) never admitted; without it the block wedges the
    /// shared chain and head-of-line-blocks stream 0.
    pub fn fig9(check_for_space: bool) -> DeploySpec {
        let stream = |name: &str, out_cap: u64| StreamDeploy {
            name: name.into(),
            mu: Rational::new(1, 8),
            eta_in: 16,
            eta_out: 16,
            reconfig: 10,
            input_capacity: 4096,
            output_capacity: out_cap,
            max_latency: None,
        };
        DeploySpec {
            name: if check_for_space {
                "fig9-space-check-enabled".into()
            } else {
                "fig9-space-check-disabled".into()
            },
            chain: vec![ChainStage {
                name: "acc".into(),
                rho: 1,
            }],
            epsilon: 2,
            delta: 1,
            ni_depth: 2,
            check_for_space,
            streams: vec![stream("s0", 1 << 16), stream("s1", 4)],
            processors: vec![],
            gateways: vec![],
            config_bus_period: None,
            station_map: None,
            modes: vec![],
        }
    }

    /// The laptop-scale PAL stereo decoder deployment of
    /// [`streamgate_core::PalSystemConfig::scaled_default`] /
    /// `pal_system_sim` — four streams over {CORDIC, FIR+8:1}, built
    /// exactly as `build_pal_system` wires it.
    pub fn pal_scaled() -> DeploySpec {
        DeploySpec::from_pal(&streamgate_core::PalSystemConfig::scaled_default())
    }

    /// A PAL deployment spec matching what
    /// [`streamgate_core::build_pal_system`] would wire for `cfg`.
    pub fn from_pal(cfg: &streamgate_core::PalSystemConfig) -> DeploySpec {
        let prob = cfg.sharing_problem();
        let cap_front = (cfg.etas[0] * 4).max(64);
        let cap_back = (cfg.etas[2] * 4).max(64);
        let caps_in = [cap_front, cap_front, cap_back * 2, cap_back * 2];
        // Front halves feed the back halves' input FIFOs; back halves feed
        // the audio FIFOs.
        let caps_out = [cap_back * 2, cap_back * 2, cap_back * 2, cap_back * 2];
        let streams = prob
            .streams
            .iter()
            .enumerate()
            .map(|(i, s)| StreamDeploy {
                name: s.name.clone(),
                mu: s.mu,
                eta_in: cfg.etas[i],
                eta_out: cfg.etas[i] / 8,
                reconfig: s.reconfig,
                input_capacity: caps_in[i],
                output_capacity: caps_out[i],
                max_latency: None,
            })
            .collect();
        // The front end must emit one baseband sample every clock/fs
        // cycles; it owns its tile (period = its own budget).
        let fe_interval = (cfg.clock_hz as f64 / cfg.pal.fs) as u64;
        DeploySpec {
            name: "pal-decoder".into(),
            chain: vec![
                ChainStage {
                    name: "CORDIC".into(),
                    rho: 1,
                },
                ChainStage {
                    name: "FIR+D".into(),
                    rho: 1,
                },
            ],
            epsilon: cfg.epsilon,
            delta: cfg.delta,
            ni_depth: 2,
            check_for_space: true,
            streams,
            processors: vec![
                ProcessorDeploy {
                    name: "FE".into(),
                    declared_period: Some(1),
                    tasks: vec![TaskDeploy {
                        name: "pal-front-end".into(),
                        budget: 1,
                        required_interval: Some(fe_interval.max(1)),
                    }],
                },
                ProcessorDeploy {
                    name: "consumer".into(),
                    declared_period: Some(1),
                    tasks: vec![TaskDeploy {
                        name: "stereo-matrix".into(),
                        budget: 1,
                        required_interval: None,
                    }],
                },
            ],
            gateways: vec![],
            config_bus_period: None,
            station_map: None,
            modes: vec![],
        }
    }

    /// The Fig. 10 evaluation deployment at the laptop scale of
    /// [`DeploySpec::pal_scaled`]: **two** gateway pairs on one shared ring
    /// — the front pair drives the CORDIC, the back pair the 8:1 FIR/LPF
    /// decimator — carrying the PAL decoder's four *logical* accelerator
    /// uses on two *physical* accelerators. Config-bus slots and per-stream
    /// latency budgets are set so rules A9/A10 have material to check; the
    /// deployment is feasible and must be accepted.
    pub fn pal2() -> DeploySpec {
        let cfg = streamgate_core::PalSystemConfig::scaled_default();
        let prob = cfg.sharing_problem();
        let stream = |i: usize, decimation: u64, max_latency: u64| StreamDeploy {
            name: prob.streams[i].name.clone(),
            mu: prob.streams[i].mu,
            eta_in: cfg.etas[i],
            eta_out: cfg.etas[i] / decimation,
            reconfig: cfg.reconfig,
            input_capacity: cfg.etas[i] * 4,
            output_capacity: (cfg.etas[i] / decimation * 4).max(64),
            max_latency: Some(max_latency),
        };
        DeploySpec {
            name: "pal2-decoder".into(),
            chain: vec![],
            epsilon: cfg.epsilon,
            delta: cfg.delta,
            ni_depth: 2,
            check_for_space: true,
            streams: vec![],
            processors: vec![
                ProcessorDeploy {
                    name: "FE".into(),
                    declared_period: Some(1),
                    tasks: vec![TaskDeploy {
                        name: "pal-front-end".into(),
                        budget: 1,
                        required_interval: Some(((cfg.clock_hz as f64 / cfg.pal.fs) as u64).max(1)),
                    }],
                },
                ProcessorDeploy {
                    name: "consumer".into(),
                    declared_period: Some(1),
                    tasks: vec![TaskDeploy {
                        name: "stereo-matrix".into(),
                        budget: 1,
                        required_interval: None,
                    }],
                },
            ],
            gateways: vec![
                GatewayDeploy {
                    name: "gw-front".into(),
                    chain: vec![ChainStage {
                        name: "CORDIC".into(),
                        rho: 1,
                    }],
                    shares_chain_with: None,
                    streams: vec![stream(0, 1, 60_000), stream(1, 1, 60_000)],
                    config_slot: Some((0, cfg.reconfig)),
                },
                GatewayDeploy {
                    name: "gw-back".into(),
                    chain: vec![ChainStage {
                        name: "FIR+D".into(),
                        rho: 1,
                    }],
                    shares_chain_with: None,
                    streams: vec![stream(2, 8, 40_000), stream(3, 8, 40_000)],
                    config_slot: Some((cfg.reconfig, cfg.reconfig)),
                },
            ],
            config_bus_period: Some(2 * cfg.reconfig),
            station_map: None,
            modes: vec![],
        }
    }

    /// The multi-mode declaration of `stream` on gateway `gateway`, when
    /// one exists.
    pub fn stream_modes(&self, gateway: usize, stream: &str) -> Option<&StreamModes> {
        self.modes
            .iter()
            .find(|m| m.gateway == gateway && m.stream == stream)
    }

    /// The **equivalent single-mode spec** of one declared mode: this spec
    /// with `stream`'s configuration on gateway `gateway` replaced by
    /// `config` (the stream keeps its name) and every multi-mode
    /// declaration dropped. Rule A11 requires each declared mode's
    /// candidate to independently pass A1–A10; by construction the
    /// candidate's report is exactly what a full analysis of this spec
    /// would produce. Returns `None` when the gateway or stream does not
    /// exist.
    pub fn single_mode_candidate(
        &self,
        gateway: usize,
        stream: &str,
        config: &StreamDeploy,
    ) -> Option<DeploySpec> {
        let mut s = self.clone();
        s.modes = Vec::new();
        let streams = if s.gateways.is_empty() {
            if gateway != 0 {
                return None;
            }
            &mut s.streams
        } else {
            &mut s.gateways.get_mut(gateway)?.streams
        };
        let i = streams.iter().position(|x| x.name == stream)?;
        let mut cfg = config.clone();
        cfg.name = stream.to_string();
        streams[i] = cfg;
        Some(s)
    }

    /// Build the cycle-level platform this spec describes — the simulation
    /// twin the differential tests validate analyzer verdicts against.
    /// Kernels realize each stream's rate conversion (see
    /// [`stream_kernels`]). Processor tiles are *not* built; validation
    /// harnesses pre-fill the input FIFOs instead.
    pub fn build_platform(&self) -> streamgate_core::BuiltSystem {
        use streamgate_core::{AccelDef, StreamDef, SystemSpec};
        let spec = SystemSpec {
            chain: self
                .chain
                .iter()
                .map(|c| AccelDef::new(c.name.clone(), c.rho))
                .collect(),
            epsilon: self.epsilon,
            delta: self.delta,
            ni_depth: self.ni_depth,
            streams: self
                .streams
                .iter()
                .map(|s| StreamDef {
                    name: s.name.clone(),
                    eta_in: s.eta_in as usize,
                    eta_out: s.eta_out as usize,
                    reconfig: s.reconfig,
                    kernels: stream_kernels(self.chain.len(), s.eta_in, s.eta_out),
                    input_capacity: s.input_capacity as usize,
                    output_capacity: s.output_capacity as usize,
                })
                .collect(),
        };
        let mut built = streamgate_core::build_shared_system(spec);
        built.system.gateways[built.gateway].check_for_space = self.check_for_space;
        built
    }

    /// Build the cycle-level platform of a **multi-gateway** spec on the
    /// [`DeploySpec::ring_layout`] placement: one accelerator tile set per
    /// owned chain, one [`streamgate_platform::GatewayPair`] per gateway
    /// (with `shared_chain` set on every pair of a multi-pair group), and
    /// rate-matched kernels per stream (see [`stream_kernels`]) — the
    /// simulation twin the differential tests validate system-scope
    /// verdicts against.
    ///
    /// Panics on single-gateway specs (use [`DeploySpec::build_platform`])
    /// and on structurally invalid gateway sections.
    pub fn build_multi_platform(&self) -> MultiBuiltSystem {
        use streamgate_platform::{AcceleratorTile, CFifo, GatewayPair, StreamConfig, System};
        assert!(
            self.is_multi(),
            "single-gateway specs build via build_platform"
        );
        assert!(
            self.gateway_structure_errors().is_empty(),
            "structurally invalid multi-gateway spec: {:?}",
            self.gateway_structure_errors()
        );
        let layout = self.ring_layout();
        let views = self.gateway_views();
        let mut sys = System::new(layout.nodes);
        // One tile set per owned chain, initially wired to the owner pair —
        // a shared group's first claim retargets the boundary links anyway.
        let mut accel_ids: Vec<Vec<streamgate_platform::AccelId>> = vec![Vec::new(); views.len()];
        for v in &views {
            if v.group != v.index {
                continue;
            }
            let nodes = &layout.chain_nodes[v.index];
            let k = v.chain.len();
            accel_ids[v.index] = (0..k)
                .map(|j| {
                    let (upstream, rx) = if j == 0 {
                        (layout.entries[v.index], layout.in_links[v.index])
                    } else {
                        (nodes[j - 1], layout.mid_links[v.index][j - 1])
                    };
                    let (downstream, tx) = if j + 1 == k {
                        (layout.exits[v.index], layout.out_links[v.index])
                    } else {
                        (nodes[j + 1], layout.mid_links[v.index][j])
                    };
                    sys.add_accel(AcceleratorTile::new(
                        format!("{}:{}", v.name, v.chain[j].name),
                        nodes[j],
                        upstream,
                        rx,
                        downstream,
                        tx,
                        self.ni_depth,
                        v.chain[j].rho,
                    ))
                })
                .collect();
        }
        let mut gateways = Vec::new();
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        for v in &views {
            let nodes = &layout.chain_nodes[v.index];
            let shared = views.iter().filter(|w| w.group == v.group).count() > 1;
            let mut gw = GatewayPair::new(
                v.name,
                layout.entries[v.index],
                layout.exits[v.index],
                accel_ids[v.group].clone(),
                nodes[0],
                layout.in_links[v.index],
                nodes[nodes.len() - 1],
                layout.out_links[v.index],
                self.ni_depth,
                self.epsilon,
                self.delta,
            );
            gw.shared_chain = shared;
            gw.check_for_space = self.check_for_space;
            let mut ins = Vec::new();
            let mut outs = Vec::new();
            for s in v.streams {
                let i = sys.add_fifo(CFifo::new(
                    format!("{}:{}:in", v.name, s.name),
                    s.input_capacity as usize,
                ));
                let o = sys.add_fifo(CFifo::new(
                    format!("{}:{}:out", v.name, s.name),
                    s.output_capacity as usize,
                ));
                gw.add_stream(StreamConfig::new(
                    s.name.clone(),
                    i,
                    o,
                    s.eta_in as usize,
                    s.eta_out as usize,
                    s.reconfig,
                    stream_kernels(v.chain.len(), s.eta_in, s.eta_out),
                ));
                ins.push(i);
                outs.push(o);
            }
            gateways.push(sys.add_gateway(gw));
            inputs.push(ins);
            outputs.push(outs);
        }
        MultiBuiltSystem {
            system: sys,
            gateways,
            inputs,
            outputs,
        }
    }
}

/// Kernels realizing a stream's `eta_in -> eta_out` rate conversion on a
/// `chain_len`-stage pipeline: passthrough stages, except the final stage
/// becomes a `eta_in/eta_out : 1` down-sampler when the stream decimates.
///
/// A 1:1 chain for a decimating stream would deadlock the platform: the
/// exit gateway stops copying after `eta_out` samples while the chain still
/// holds `eta_in - eta_out` more, so back-pressure wedges the entry DMA
/// with the block forever incomplete. The analyzer's rules assume the
/// chain *implements* the declared rates; the built twin must too.
///
/// Panics when a decimating stream's `eta_out` does not divide `eta_in`
/// (no integer down-sampling factor exists) or when `eta_out > eta_in`
/// (interpolation is not modelled).
pub fn stream_kernels(
    chain_len: usize,
    eta_in: u64,
    eta_out: u64,
) -> Vec<Box<dyn streamgate_platform::StreamKernel>> {
    use streamgate_platform::{DownsampleKernel, PassthroughKernel};
    assert!(
        eta_out > 0 && eta_out <= eta_in && eta_in.is_multiple_of(eta_out),
        "stream rates {eta_in} -> {eta_out} have no integer decimation factor"
    );
    let factor = (eta_in / eta_out) as usize;
    (0..chain_len)
        .map(|j| {
            if j + 1 == chain_len && factor > 1 {
                Box::new(DownsampleKernel::new(factor))
                    as Box<dyn streamgate_platform::StreamKernel>
            } else {
                Box::new(PassthroughKernel)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_json_roundtrip() {
        for spec in [
            DeploySpec::fig6(),
            DeploySpec::fig9(false),
            DeploySpec::pal_scaled(),
            DeploySpec::pal2(),
        ] {
            let text = spec.to_json_text();
            let back = DeploySpec::from_json_text(&text).unwrap();
            assert_eq!(back, spec);
            assert_eq!(back.to_json_text(), text);
        }
    }

    #[test]
    fn single_gateway_json_has_no_multi_keys() {
        // PR-3 consumers must keep seeing byte-identical documents.
        for spec in [DeploySpec::fig6(), DeploySpec::pal_scaled()] {
            let text = spec.to_json_text();
            for key in ["gateways", "config_bus_period", "max_latency", "modes"] {
                assert!(!text.contains(key), "legacy JSON grew a {key:?} key");
            }
        }
    }

    #[test]
    fn mode_declarations_roundtrip_and_candidate_substitutes() {
        let mut spec = DeploySpec::pal2();
        let mut fast = spec.gateways[0].streams[0].clone();
        fast.eta_in *= 2;
        fast.eta_out *= 2;
        let slow = spec.gateways[0].streams[0].clone();
        spec.modes = vec![StreamModes {
            gateway: 0,
            stream: slow.name.clone(),
            modes: vec![
                StreamMode {
                    name: "slow".into(),
                    config: slow.clone(),
                },
                StreamMode {
                    name: "fast".into(),
                    config: fast.clone(),
                },
            ],
            transitions: vec![("slow".into(), "fast".into())],
        }];
        let text = spec.to_json_text();
        let back = DeploySpec::from_json_text(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json_text(), text);

        let decl = spec.stream_modes(0, &slow.name).unwrap();
        assert!(decl.transition_allowed("slow", "fast"));
        assert!(!decl.transition_allowed("fast", "slow"));

        let cand = spec.single_mode_candidate(0, &slow.name, &fast).unwrap();
        assert!(cand.modes.is_empty());
        assert_eq!(cand.gateways[0].streams[0].eta_in, fast.eta_in);
        assert_eq!(cand.gateways[0].streams[0].name, slow.name);
        assert!(spec.single_mode_candidate(0, "nope", &fast).is_none());
    }

    #[test]
    fn gateway_views_cover_both_shapes() {
        let single = DeploySpec::fig6();
        let views = single.gateway_views();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].group, 0);
        assert_eq!(views[0].streams.len(), 1);
        assert_eq!(views[0].c0(), 3);
        assert!(!single.is_multi());

        let multi = DeploySpec::pal2();
        assert!(multi.is_multi());
        assert!(multi.gateway_structure_errors().is_empty());
        let views = multi.gateway_views();
        assert_eq!(views.len(), 2);
        assert_eq!((views[0].group, views[1].group), (0, 1));
        assert_eq!(views[0].chain[0].name, "CORDIC");
        assert_eq!(views[1].chain[0].name, "FIR+D");
        assert_eq!(multi.all_streams().len(), 4);
        assert_eq!(multi.all_streams()[2].0, 1);
    }

    #[test]
    fn shared_group_resolves_to_owner_chain() {
        let mut spec = DeploySpec::pal2();
        spec.gateways[1].chain = vec![];
        spec.gateways[1].shares_chain_with = Some(0);
        assert!(spec.gateway_structure_errors().is_empty());
        let views = spec.gateway_views();
        assert_eq!(views[1].group, 0);
        assert_eq!(views[1].chain[0].name, "CORDIC");
        // Both pairs see the same physical stations.
        let layout = spec.ring_layout();
        assert_eq!(layout.chain_nodes[0], layout.chain_nodes[1]);

        // Dangling and forward references are reported, not resolved.
        spec.gateways[1].shares_chain_with = Some(5);
        assert!(!spec.gateway_structure_errors().is_empty());
    }

    /// pal2 with the two pairs' stations deliberately scrambled (and two
    /// spare forwarding stations), so paths wrap and cross differently
    /// from the interleaved default.
    fn pal2_mapped() -> DeploySpec {
        let mut spec = DeploySpec::pal2();
        spec.station_map = Some(StationMap {
            nodes: 8,
            entries: vec![5, 0],
            exits: vec![1, 3],
            chain_nodes: vec![vec![6], vec![2]],
        });
        spec
    }

    #[test]
    fn station_map_roundtrips_and_overrides_layout() {
        let spec = pal2_mapped();
        assert!(spec.gateway_structure_errors().is_empty());
        let text = spec.to_json_text();
        let back = DeploySpec::from_json_text(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json_text(), text);

        let layout = spec.ring_layout();
        assert_eq!(layout.nodes, 8);
        assert_eq!(layout.entries, vec![5, 0]);
        assert_eq!(layout.chain_nodes, vec![vec![6], vec![2]]);
        assert_eq!(layout.exits, vec![1, 3]);
        // Gateway 0's entry segment wraps 5 → 6; its exit segment 6 → 1
        // crosses the spare station 7 and both of gateway 1's end stations.
        assert_eq!(layout.segments(0), vec![(5, 6), (6, 1)]);
        assert_eq!(layout.data_hops(6, 1), vec![6, 7, 0]);
        // Link ids stay the placement-independent scheme.
        assert_eq!(layout.in_links, vec![0, 2]);
        assert_eq!(layout.out_links, vec![1, 3]);
    }

    #[test]
    fn station_map_defects_reported_not_built() {
        // Station reuse across pairs.
        let mut spec = pal2_mapped();
        spec.station_map.as_mut().unwrap().entries[1] = 5;
        assert!(!spec.gateway_structure_errors().is_empty());
        // An invalid map never silently half-applies: the layout falls
        // back to the interleaved placement.
        assert_eq!(spec.ring_layout(), DeploySpec::pal2().ring_layout());

        // Station outside the ring.
        let mut spec = pal2_mapped();
        spec.station_map.as_mut().unwrap().chain_nodes[0] = vec![8];
        assert!(!spec.gateway_structure_errors().is_empty());

        // Chain-station count must match the chain.
        let mut spec = pal2_mapped();
        spec.station_map.as_mut().unwrap().chain_nodes[1] = vec![2, 4];
        assert!(!spec.gateway_structure_errors().is_empty());

        // A sharer must alias the owner's chain stations.
        let mut spec = pal2_mapped();
        spec.gateways[1].chain = vec![];
        spec.gateways[1].shares_chain_with = Some(0);
        spec.station_map.as_mut().unwrap().chain_nodes = vec![vec![6], vec![2]];
        assert!(!spec.gateway_structure_errors().is_empty());
        spec.station_map.as_mut().unwrap().chain_nodes = vec![vec![6], vec![6]];
        assert!(spec.gateway_structure_errors().is_empty());
        let layout = spec.ring_layout();
        assert_eq!(layout.chain_nodes[0], layout.chain_nodes[1]);
    }

    #[test]
    fn station_mapped_platform_matches_interleaved_behaviour() {
        // The placement moves stations, not semantics: the same deployment
        // built on the scrambled map must move exactly the same samples.
        let run = |spec: &DeploySpec| {
            let mut built = spec.build_multi_platform();
            for (g, v) in spec.gateway_views().iter().enumerate() {
                for (s, st) in v.streams.iter().enumerate() {
                    for k in 0..st.eta_in {
                        let f = built.inputs[g][s];
                        built.system.fifos[f.0].try_push((k as f64, 0.0), 0);
                    }
                }
            }
            built.system.run(200_000);
            let popped: Vec<u64> = built
                .outputs
                .iter()
                .flatten()
                .map(|o| built.system.fifos[o.0].pushed)
                .collect();
            popped
        };
        assert_eq!(run(&DeploySpec::pal2()), run(&pal2_mapped()));
    }

    #[test]
    fn identity_station_map_is_fully_equivalent_to_fallback() {
        // A user map that spells out exactly the interleaved fallback
        // placement is *indistinguishable* from omitting the map: same
        // layout, byte-identical analyzer report, identical cycle-level
        // trace. (ROADMAP: interleaved fallback vs user map equivalence.)
        let plain = DeploySpec::pal2();
        let fallback = plain.ring_layout();
        let mut mapped = plain.clone();
        mapped.station_map = Some(StationMap {
            nodes: fallback.nodes,
            entries: fallback.entries.clone(),
            exits: fallback.exits.clone(),
            chain_nodes: fallback.chain_nodes.clone(),
        });
        assert!(mapped.gateway_structure_errors().is_empty());
        assert_eq!(mapped.ring_layout(), fallback);

        let opts = crate::rules::AnalysisOptions {
            exact_buffers: false,
        };
        let a = crate::rules::analyze_with(&plain, &opts);
        let b = crate::rules::analyze_with(&mapped, &opts);
        assert_eq!(a, b);
        assert_eq!(a.to_json_text(), b.to_json_text());

        let trace = |spec: &DeploySpec| {
            let mut built = spec.build_multi_platform();
            built.system.enable_tracing(0);
            for (g, v) in spec.gateway_views().iter().enumerate() {
                for (s, st) in v.streams.iter().enumerate() {
                    for k in 0..st.eta_in {
                        let f = built.inputs[g][s];
                        built.system.fifos[f.0].try_push((k as f64, 0.0), 0);
                    }
                }
            }
            built.system.run(200_000);
            built.system.tracer.events().to_vec()
        };
        assert_eq!(trace(&plain), trace(&mapped));
    }

    #[test]
    fn ring_layout_interleaves_and_tracks_paths() {
        let layout = DeploySpec::pal2().ring_layout();
        // entries 0..2, accels 2..4, exits 4..6.
        assert_eq!(layout.nodes, 6);
        assert_eq!(layout.entries, vec![0, 1]);
        assert_eq!(layout.chain_nodes, vec![vec![2], vec![3]]);
        assert_eq!(layout.exits, vec![4, 5]);
        assert_eq!(layout.segments(0), vec![(0, 2), (2, 4)]);
        assert_eq!(layout.segments(1), vec![(1, 3), (3, 5)]);
        // Interleaving makes the two pairs' data paths overlap (hop 1).
        assert_eq!(layout.data_hops(0, 2), vec![0, 1]);
        assert_eq!(layout.data_hops(1, 3), vec![1, 2]);
        // Credits cross the same stations in the opposite rotation.
        assert_eq!(layout.credit_hops(0, 2), vec![2, 1]);
    }

    #[test]
    fn build_multi_platform_wires_pal2() {
        let spec = DeploySpec::pal2();
        let built = spec.build_multi_platform();
        assert_eq!(built.gateways.len(), 2);
        assert_eq!(built.system.accels.len(), 2);
        for (g, v) in spec.gateway_views().iter().enumerate() {
            let gw = &built.system.gateways[built.gateways[g]];
            // Own chains, no sharing: the claim/release protocol stays off.
            assert!(!gw.shared_chain);
            assert_eq!(gw.num_streams(), v.streams.len());
            for (s, sd) in v.streams.iter().enumerate() {
                let sc = gw.stream(s);
                assert_eq!(sc.eta_in as u64, sd.eta_in);
                assert_eq!(sc.eta_out as u64, sd.eta_out);
                assert_eq!(sc.reconfig_cycles, sd.reconfig);
                assert_eq!(
                    built.system.fifos[built.inputs[g][s].0].capacity() as u64,
                    sd.input_capacity
                );
            }
        }
    }

    #[test]
    fn to_deploy_spec_round_trips_through_platform() {
        use super::ToDeploySpec;
        let cfg = streamgate_core::PalSystemConfig::scaled_default();
        let spec = cfg.to_deploy_spec();
        let built = spec.build_platform();
        let gw = &built.system.gateways[built.gateway];
        // spec → platform: every wired quantity matches the exported spec.
        assert_eq!(built.system.accels.len(), spec.chain.len());
        assert_eq!(gw.num_streams(), spec.streams.len());
        for (i, sd) in spec.streams.iter().enumerate() {
            let sc = gw.stream(i);
            assert_eq!(sc.eta_in as u64, sd.eta_in);
            assert_eq!(sc.eta_out as u64, sd.eta_out);
            assert_eq!(sc.reconfig_cycles, sd.reconfig);
            assert_eq!(
                built.system.fifos[sc.input.0].capacity() as u64,
                sd.input_capacity
            );
            assert_eq!(
                built.system.fifos[sc.output.0].capacity() as u64,
                sd.output_capacity
            );
        }
        // platform → spec: re-exporting yields the same document.
        assert_eq!(cfg.to_deploy_spec(), spec);
        assert_eq!(
            DeploySpec::from_json_text(&spec.to_json_text()).unwrap(),
            spec
        );
    }

    #[test]
    fn pal_spec_matches_sharing_problem() {
        let cfg = streamgate_core::PalSystemConfig::scaled_default();
        let spec = DeploySpec::from_pal(&cfg);
        let prob = spec.sharing_problem();
        let reference = cfg.sharing_problem();
        assert_eq!(prob.params, reference.params);
        assert_eq!(prob.streams.len(), 4);
        for (a, b) in prob.streams.iter().zip(&reference.streams) {
            assert_eq!(a.mu, b.mu);
            assert_eq!(a.reconfig, b.reconfig);
        }
        assert_eq!(spec.etas(), cfg.etas.to_vec());
    }

    #[test]
    fn c0_is_chain_maximum() {
        let mut s = DeploySpec::fig6();
        assert_eq!(s.c0(), 3);
        s.chain.push(ChainStage {
            name: "slow".into(),
            rho: 9,
        });
        assert_eq!(s.c0(), 9);
        assert_eq!(s.rho_a(), 9);
    }

    #[test]
    fn build_platform_wires_streams_and_space_check() {
        let mut spec = DeploySpec::fig9(false);
        spec.streams[1].output_capacity = 64; // buildable but still unchecked
        let built = spec.build_platform();
        assert!(!built.system.gateways[built.gateway].check_for_space);
        assert_eq!(built.inputs.len(), 2);
        assert_eq!(built.system.accels.len(), 1);
    }
}
