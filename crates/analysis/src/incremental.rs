//! Incremental admission-control analysis: O(affected-gateways)
//! re-verification of the A1–A10 verdict under stream churn, plus the
//! run-time [`AdmissionController`] that splices accepted streams into a
//! *running* system.
//!
//! The paper's analysis is a design-time procedure over a fixed
//! deployment. A production system, though, sees streams join and leave
//! at traffic rates — and re-running the full analyzer per request is
//! wasteful precisely where it hurts: the expensive rules (A1's CSDF
//! self-timed execution, A2's exact minimum-buffer search) are *per
//! gateway pair* and a stream change touches exactly one pair. This
//! module follows the design-time/run-time split of the related
//! multi-mode work (see PAPERS.md): a full analysis up front caches its
//! per-rule intermediate facts ([`AnalysisState`]), and each
//! [`Delta`] — add, remove or retune one stream — re-evaluates only the
//! facts the change can reach:
//!
//! * the affected pair's A1–A6 diagnostics, τ̂ vector and utilisation
//!   ([`crate::rules`]'s `PairFacts`) — the expensive part, recomputed
//!   for **one** gateway;
//! * the pair's additive A7 ring-load contribution (`RingContrib`) on the
//!   hops of its path — recomputed for the same single gateway;
//! * every *cheap* system-scope coupling — A8 round interference through
//!   `shares_chain_with` groups (linear arithmetic over the cached τ̂
//!   vectors), A9 config-bus slot overlap, A10 latency composition —
//!   re-assembled from the cache in O(gateways + streams) scalar work
//!   with no model execution.
//!
//! The soundness contract is *equivalence by construction*: the full
//! analyzer ([`crate::analyze_with`]) is itself implemented as "compute
//! all facts, assemble report", and the incremental path reuses the same
//! assembly over a cache where only the affected entries were replaced.
//! Unaffected entries are pure functions of spec parts the delta cannot
//! touch, so **incremental verdict ≡ full re-analysis verdict, always**
//! — diagnostics, bounds and JSON bytes included (enforced by the
//! differential proptest in `tests/incremental_churn.rs`).

use crate::diag::Report;
use crate::profile::monitor_config_for;
use crate::rules::{assemble_report, AnalysisOptions, Facts};
use crate::spec::{stream_from_json, stream_kernels, DeploySpec, StreamDeploy};
use crate::{json, Json};
use streamgate_core::Monitor;
use streamgate_platform::{CFifo, FifoId, StreamConfig, System};

/// One stream-churn request against a deployment.
#[derive(Clone, Debug, PartialEq)]
pub enum Delta {
    /// Deploy a new stream on gateway pair `gateway`.
    AddStream {
        /// Gateway (view) index the stream joins. Always 0 for
        /// single-gateway specs.
        gateway: usize,
        /// The stream to deploy.
        stream: StreamDeploy,
    },
    /// Tear down the named stream on gateway pair `gateway`.
    RemoveStream {
        /// Gateway (view) index the stream leaves.
        gateway: usize,
        /// Name of the stream to remove.
        stream: String,
    },
    /// Replace the named stream's configuration (rate, block sizes,
    /// capacities, budgets) in place.
    RetuneStream {
        /// Gateway (view) index of the stream.
        gateway: usize,
        /// Name of the stream to retune.
        stream: String,
        /// The replacement configuration (may carry a new name).
        with: StreamDeploy,
    },
}

impl Delta {
    /// The gateway (view) index this delta touches — the *only* pair
    /// whose expensive per-pair facts need re-evaluation.
    pub fn gateway(&self) -> usize {
        match self {
            Delta::AddStream { gateway, .. }
            | Delta::RemoveStream { gateway, .. }
            | Delta::RetuneStream { gateway, .. } => *gateway,
        }
    }

    /// Short human-readable description (`add s3 @ gw1` style).
    pub fn describe(&self) -> String {
        match self {
            Delta::AddStream { gateway, stream } => {
                format!("add {} @ gateway {gateway}", stream.name)
            }
            Delta::RemoveStream { gateway, stream } => {
                format!("remove {stream} @ gateway {gateway}")
            }
            Delta::RetuneStream {
                gateway,
                stream,
                with,
            } => format!("retune {stream} -> {} @ gateway {gateway}", with.name),
        }
    }
}

/// Why a [`Delta`] could not even be *evaluated* (as opposed to being
/// evaluated and rejected).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta names a gateway the spec does not have.
    UnknownGateway(usize),
    /// The delta names a stream the gateway does not carry.
    UnknownStream(usize, String),
    /// An add/retune would create a second stream with the same name on
    /// the same gateway (names key the run-time splice and the monitor).
    DuplicateStream(usize, String),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::UnknownGateway(g) => write!(f, "unknown gateway {g}"),
            DeltaError::UnknownStream(g, s) => {
                write!(f, "gateway {g} has no stream named {s:?}")
            }
            DeltaError::DuplicateStream(g, s) => {
                write!(f, "gateway {g} already has a stream named {s:?}")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// The admission decision for one [`Delta`], carrying the full analyzer
/// report of the *candidate* deployment (the spec with the delta
/// applied) — identical, diagnostic for diagnostic, to what a fresh
/// [`crate::analyze_with`] of that candidate produces.
#[derive(Clone, Debug, PartialEq)]
pub enum AdmissionVerdict {
    /// The candidate deployment passes every rule: the change may be
    /// committed (and, via [`AdmissionController`], spliced into the
    /// running system).
    Admit(Report),
    /// The candidate deployment fails at least one rule at Error
    /// severity. Nothing is committed; the running system and every
    /// already-admitted stream's τ ≤ τ̂ bound are untouched.
    Reject(Report),
}

impl AdmissionVerdict {
    /// True for [`AdmissionVerdict::Admit`].
    pub fn is_admitted(&self) -> bool {
        matches!(self, AdmissionVerdict::Admit(_))
    }

    /// The candidate deployment's full report, either way.
    pub fn report(&self) -> &Report {
        match self {
            AdmissionVerdict::Admit(r) | AdmissionVerdict::Reject(r) => r,
        }
    }
}

/// Persistent analyzer state for incremental re-verification: the
/// current (committed) spec, the cached per-rule facts of its full
/// A1–A10 run, and the assembled report.
#[derive(Clone, Debug)]
pub struct AnalysisState {
    spec: DeploySpec,
    opts: AnalysisOptions,
    facts: Facts,
    report: Report,
}

impl AnalysisState {
    /// Run the full analysis once and cache every intermediate fact.
    pub fn new(spec: DeploySpec, opts: AnalysisOptions) -> AnalysisState {
        let facts = Facts::compute(&spec, &opts);
        let report = assemble_report(&spec, &facts);
        AnalysisState {
            spec,
            opts,
            facts,
            report,
        }
    }

    /// The committed deployment.
    pub fn spec(&self) -> &DeploySpec {
        &self.spec
    }

    /// The committed deployment's report.
    pub fn report(&self) -> &Report {
        &self.report
    }

    /// Apply `delta` to a clone of the committed spec, returning the
    /// candidate spec and the touched gateway index.
    fn candidate_spec(&self, delta: &Delta) -> Result<(DeploySpec, usize), DeltaError> {
        let mut spec = self.spec.clone();
        let g = delta.gateway();
        let streams: &mut Vec<StreamDeploy> = if spec.gateways.is_empty() {
            if g != 0 {
                return Err(DeltaError::UnknownGateway(g));
            }
            &mut spec.streams
        } else {
            match spec.gateways.get_mut(g) {
                Some(gw) => &mut gw.streams,
                None => return Err(DeltaError::UnknownGateway(g)),
            }
        };
        match delta {
            Delta::AddStream { stream, .. } => {
                if streams.iter().any(|s| s.name == stream.name) {
                    return Err(DeltaError::DuplicateStream(g, stream.name.clone()));
                }
                streams.push(stream.clone());
            }
            Delta::RemoveStream { stream, .. } => {
                let i = streams
                    .iter()
                    .position(|s| s.name == *stream)
                    .ok_or_else(|| DeltaError::UnknownStream(g, stream.clone()))?;
                streams.remove(i);
            }
            Delta::RetuneStream { stream, with, .. } => {
                let i = streams
                    .iter()
                    .position(|s| s.name == *stream)
                    .ok_or_else(|| DeltaError::UnknownStream(g, stream.clone()))?;
                if with.name != *stream && streams.iter().any(|s| s.name == with.name) {
                    return Err(DeltaError::DuplicateStream(g, with.name.clone()));
                }
                streams[i] = with.clone();
            }
        }
        Ok((spec, g))
    }

    /// Evaluate `delta` without committing anything: recompute the
    /// touched gateway's facts on the candidate spec, re-assemble, and
    /// judge. The expensive per-pair rules run for **one** gateway; every
    /// other pair's cached facts are reused verbatim (they are functions
    /// of spec parts the delta cannot change).
    pub fn evaluate(&self, delta: &Delta) -> Result<AdmissionVerdict, DeltaError> {
        Ok(self.evaluate_candidate(delta)?.2)
    }

    /// Evaluate `delta` and, **iff admitted**, commit the candidate spec,
    /// facts and report as the new baseline. A rejected (or malformed)
    /// delta leaves the state bit-for-bit untouched — the non-disruptive
    /// reject path of the admission contract.
    pub fn apply(&mut self, delta: &Delta) -> Result<AdmissionVerdict, DeltaError> {
        let (spec, facts, verdict) = self.evaluate_candidate(delta)?;
        if let AdmissionVerdict::Admit(report) = &verdict {
            self.spec = spec;
            self.facts = facts;
            self.report = report.clone();
        }
        Ok(verdict)
    }

    fn candidate_report(spec: &DeploySpec, facts: &Facts) -> Report {
        assemble_report(spec, facts)
    }

    fn evaluate_candidate(
        &self,
        delta: &Delta,
    ) -> Result<(DeploySpec, Facts, AdmissionVerdict), DeltaError> {
        let (spec, g) = self.candidate_spec(delta)?;
        let mut facts = self.facts.clone();
        facts.recompute_gateway(&spec, g, &self.opts);
        let report = Self::candidate_report(&spec, &facts);
        let verdict = if report.is_accepted() {
            AdmissionVerdict::Admit(report)
        } else {
            AdmissionVerdict::Reject(report)
        };
        Ok((spec, facts, verdict))
    }
}

/// Parse a `--delta` admission script: a JSON object with a `deltas`
/// array whose entries are `{"op": "add", "gateway": N, "stream":
/// {...}}`, `{"op": "remove", "gateway": N, "stream": "name"}` or
/// `{"op": "retune", "gateway": N, "stream": {...}}` (retune matches the
/// existing stream by the new configuration's name unless a separate
/// `"target"` name is given). Stream objects use the spec-JSON stream
/// encoding (`name`, `mu: [num, den]`, `eta_in`, `eta_out`, `reconfig`,
/// `input_capacity`, `output_capacity`, optional `max_latency`).
/// `gateway` defaults to 0.
pub fn parse_delta_script(text: &str) -> Result<Vec<Delta>, String> {
    let top = json::parse(text)?;
    let arr = top
        .get("deltas")
        .and_then(Json::as_array)
        .ok_or("delta script without a deltas array")?;
    arr.iter()
        .enumerate()
        .map(|(i, d)| {
            let op = d
                .get("op")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("delta {i} without an op"))?;
            let gateway = d.get("gateway").and_then(Json::as_u64).unwrap_or(0) as usize;
            match op {
                "add" => Ok(Delta::AddStream {
                    gateway,
                    stream: stream_from_json(
                        d.get("stream")
                            .ok_or_else(|| format!("delta {i}: add without a stream object"))?,
                    )?,
                }),
                "remove" => Ok(Delta::RemoveStream {
                    gateway,
                    stream: d
                        .get("stream")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("delta {i}: remove without a stream name"))?
                        .to_string(),
                }),
                "retune" => {
                    let with =
                        stream_from_json(d.get("stream").ok_or_else(|| {
                            format!("delta {i}: retune without a stream object")
                        })?)?;
                    let target = d
                        .get("target")
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .unwrap_or_else(|| with.name.clone());
                    Ok(Delta::RetuneStream {
                        gateway,
                        stream: target,
                        with,
                    })
                }
                other => Err(format!("delta {i}: unknown op {other:?}")),
            }
        })
        .collect()
}

/// Why a run-time admission attempt failed beyond the analysis itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The delta was malformed against the committed spec.
    Delta(DeltaError),
    /// The platform could not be brought into the required state (an
    /// idle affected pair inside its config-bus slot) within the cycle
    /// budget — e.g. a saturated pair that never goes idle.
    Timeout(String),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Delta(e) => write!(f, "{e}"),
            AdmissionError::Timeout(m) => write!(f, "admission timeout: {m}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

impl From<DeltaError> for AdmissionError {
    fn from(e: DeltaError) -> AdmissionError {
        AdmissionError::Delta(e)
    }
}

/// What a run-time admission attempt did.
#[derive(Debug)]
pub struct AdmissionOutcome {
    /// The analysis verdict, with the candidate deployment's full report.
    pub verdict: AdmissionVerdict,
    /// Reconfiguration window `[start, end)` of the config-bus splice
    /// transaction, when the delta was admitted and touched the platform.
    pub window: Option<(u64, u64)>,
    /// C-FIFOs created for an admitted add/retune (input, output).
    pub fifos: Option<(FifoId, FifoId)>,
    /// The stream's index in its gateway's table after an admitted
    /// add/retune splice.
    pub stream_index: Option<usize>,
}

/// Run-time admission control over a *running* [`System`]: consults the
/// incremental analyzer, and — only on [`AdmissionVerdict::Admit`] —
/// splices the change in through the configuration bus inside an
/// analyzed reconfiguration window, then re-arms the online [`Monitor`]
/// with the updated bounds.
///
/// Transition-window soundness (DESIGN.md §10): a splice-in is an
/// append-only stream-table write scheduled inside the pair's A9 bus
/// slot; it never touches the active block's table entry, the round-robin
/// cursor or the chain's data path, so every in-flight and co-deployed
/// stream keeps its τ ≤ τ̂ bound across the transition, and the new
/// stream's first block pays its full `R_s` through the ordinary
/// admission path exactly as Eq. 2 charges it. A splice-out additionally
/// waits for the pair to go idle, so no block is in flight on the
/// affected pair when its table shrinks. Rejects return before any
/// platform call — state mutation on the reject path is structurally
/// impossible.
pub struct AdmissionController {
    state: AnalysisState,
    /// Cycle budget for waiting on an idle pair, as a multiple of the
    /// committed γ (the analyzer's round bound: every admitted block
    /// completes within it, so a handful of rounds is ample slack).
    idle_rounds: u64,
}

impl AdmissionController {
    /// Controller over a committed baseline deployment. Runs the full
    /// analysis once; subsequent requests are incremental.
    pub fn new(spec: DeploySpec, opts: AnalysisOptions) -> AdmissionController {
        AdmissionController {
            state: AnalysisState::new(spec, opts),
            idle_rounds: 8,
        }
    }

    /// The underlying incremental analyzer state.
    pub fn state(&self) -> &AnalysisState {
        &self.state
    }

    /// The committed deployment.
    pub fn spec(&self) -> &DeploySpec {
        self.state.spec()
    }

    /// The committed deployment's report.
    pub fn report(&self) -> &Report {
        self.state.report()
    }

    /// Evaluate a delta without touching the platform or committing
    /// anything — the pure analysis half of [`AdmissionController::request`].
    pub fn evaluate(&self, delta: &Delta) -> Result<AdmissionVerdict, DeltaError> {
        self.state.evaluate(delta)
    }

    /// Process one admission request against the running `system`.
    ///
    /// `gateway_map[v]` is the system gateway index of spec gateway view
    /// `v` — `[built.gateway]` for a `BuiltSystem`, `&built.gateways` for
    /// a [`crate::MultiBuiltSystem`] (both are identity mappings, which
    /// the monitor re-arming also relies on). `monitor`, when given, is
    /// re-armed with the updated τ̂/γ bounds after an admitted splice.
    ///
    /// On [`AdmissionVerdict::Reject`] the method returns *before any
    /// platform interaction*: the system, the committed spec and every
    /// admitted stream's bounds are untouched.
    pub fn request(
        &mut self,
        system: &mut System,
        gateway_map: &[usize],
        delta: &Delta,
        monitor: Option<&mut Monitor>,
    ) -> Result<AdmissionOutcome, AdmissionError> {
        let verdict = self.state.evaluate(delta)?;
        if !verdict.is_admitted() {
            return Ok(AdmissionOutcome {
                verdict,
                window: None,
                fifos: None,
                stream_index: None,
            });
        }
        let g = delta.gateway();
        let sysg = *gateway_map.get(g).ok_or(DeltaError::UnknownGateway(g))?;

        let (window, fifos, stream_index) = match delta {
            Delta::AddStream { stream, .. } => {
                let t = self.align_to_slot(system, g, stream.reconfig);
                let (i, o, idx) = self.splice_in(system, sysg, g, stream);
                (Some((t, t + stream.reconfig)), Some((i, o)), Some(idx))
            }
            Delta::RemoveStream { stream, .. } => {
                let (t, idx) = self.idle_in_slot(system, sysg, g, stream)?;
                let removed = system.splice_out_stream(sysg, idx);
                (Some((t, t + removed.reconfig_cycles)), None, None)
            }
            Delta::RetuneStream { stream, with, .. } => {
                let (t, idx) = self.idle_in_slot(system, sysg, g, stream)?;
                let _removed = system.splice_out_stream(sysg, idx);
                let (i, o, new_idx) = self.splice_in(system, sysg, g, with);
                (Some((t, t + with.reconfig)), Some((i, o)), Some(new_idx))
            }
        };

        // Commit the analysis state. The candidate is the same one the
        // evaluate above admitted, so this cannot reject.
        let verdict = self.state.apply(delta)?;
        debug_assert!(verdict.is_admitted());

        if let Some(m) = monitor {
            m.rearm(monitor_config_for(
                self.state.spec(),
                self.state.report(),
                system,
            ));
        }
        Ok(AdmissionOutcome {
            verdict,
            window,
            fifos,
            stream_index,
        })
    }

    /// Create the stream's C-FIFOs (named like the spec builders name
    /// them) and append its table entry with passthrough kernels — the
    /// same kernels [`DeploySpec::build_platform`] installs.
    fn splice_in(
        &self,
        system: &mut System,
        sysg: usize,
        g: usize,
        stream: &StreamDeploy,
    ) -> (FifoId, FifoId, usize) {
        let spec = self.state.spec();
        let (in_name, out_name) = if spec.is_multi() {
            let gw = &spec.gateways[g].name;
            (
                format!("{gw}:{}:in", stream.name),
                format!("{gw}:{}:out", stream.name),
            )
        } else {
            (
                format!("in:{}", stream.name),
                format!("out:{}", stream.name),
            )
        };
        let i = system.splice_fifo(CFifo::new(in_name, stream.input_capacity as usize));
        let o = system.splice_fifo(CFifo::new(out_name, stream.output_capacity as usize));
        let chain_len = system.gateways[sysg].chain.len();
        let kernels = stream_kernels(chain_len, stream.eta_in, stream.eta_out);
        let idx = system.splice_stream(
            sysg,
            StreamConfig::new(
                stream.name.clone(),
                i,
                o,
                stream.eta_in as usize,
                stream.eta_out as usize,
                stream.reconfig,
                kernels,
            ),
        );
        (i, o, idx)
    }

    /// Advance the system to the next cycle inside gateway `g`'s
    /// config-bus slot with at least `r` cycles of slot left (rule A9
    /// guarantees `r` fits any slot the pair declares). Specs without a
    /// bus frame splice immediately. Returns the splice cycle.
    fn align_to_slot(&self, system: &mut System, g: usize, r: u64) -> u64 {
        let spec = self.state.spec();
        let slot = spec
            .gateway_views()
            .get(g)
            .and_then(|v| v.config_slot)
            .zip(spec.config_bus_period);
        let Some(((off, len), period)) = slot else {
            return system.cycle();
        };
        let now = system.cycle();
        let latest = off + len.saturating_sub(r.min(len));
        let phase = now % period;
        let t = if (off..=latest).contains(&phase) {
            now
        } else if phase < off {
            now + (off - phase)
        } else {
            now + (period - phase) + off
        };
        if t > now {
            system.run(t - now);
        }
        system.cycle()
    }

    /// Bring gateway `sysg` to *idle inside its bus slot*: wait for the
    /// pair to finish its in-flight block (state predicate — fires at the
    /// same cycle in both engines), then align to the slot, re-verifying
    /// idleness after the alignment run, with bounded retries. Also
    /// resolves the target stream's current table index by name.
    fn idle_in_slot(
        &self,
        system: &mut System,
        sysg: usize,
        g: usize,
        stream: &str,
    ) -> Result<(u64, usize), AdmissionError> {
        let gamma = self.state.report().gamma.max(1);
        let budget = self.idle_rounds * gamma + 4000;
        for _ in 0..8 {
            let idle = system.gateways[sysg].is_idle()
                || system.run_until(budget, |s| s.gateways[sysg].is_idle());
            if !idle {
                return Err(AdmissionError::Timeout(format!(
                    "gateway {sysg} not idle within {budget} cycles (gamma = {gamma})"
                )));
            }
            let t = self.align_to_slot(system, g, 0);
            if system.gateways[sysg].is_idle() {
                let gw = &system.gateways[sysg];
                let idx = (0..gw.num_streams())
                    .find(|&i| gw.stream(i).name == stream)
                    .ok_or_else(|| {
                        AdmissionError::Delta(DeltaError::UnknownStream(g, stream.to_string()))
                    })?;
                return Ok((t, idx));
            }
        }
        Err(AdmissionError::Timeout(format!(
            "gateway {sysg} kept admitting blocks across its config-bus slot"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_with, DeploySpec};
    use streamgate_ilp::Rational;

    fn probe(name: &str) -> StreamDeploy {
        StreamDeploy {
            name: name.into(),
            mu: Rational::new(1, 1_000_000),
            eta_in: 8,
            eta_out: 8,
            reconfig: 20,
            input_capacity: 64,
            output_capacity: 64,
            max_latency: None,
        }
    }

    #[test]
    fn add_then_remove_matches_full_analysis() {
        let opts = AnalysisOptions::default();
        let mut st = AnalysisState::new(DeploySpec::pal2(), opts);
        let add = Delta::AddStream {
            gateway: 1,
            stream: probe("probe"),
        };
        let v = st.apply(&add).unwrap();
        assert!(v.is_admitted(), "{}", v.report().render_text());
        let mut full_spec = DeploySpec::pal2();
        full_spec.gateways[1].streams.push(probe("probe"));
        let full = analyze_with(&full_spec, &opts);
        assert_eq!(v.report(), &full);
        assert_eq!(v.report().to_json_text(), full.to_json_text());

        let rm = Delta::RemoveStream {
            gateway: 1,
            stream: "probe".into(),
        };
        let v = st.apply(&rm).unwrap();
        assert!(v.is_admitted());
        assert_eq!(v.report(), &analyze_with(&DeploySpec::pal2(), &opts));
    }

    #[test]
    fn reject_leaves_state_untouched() {
        let opts = AnalysisOptions::default();
        let mut st = AnalysisState::new(DeploySpec::pal2(), opts);
        let before = st.report().clone();
        // μ = 1/2 on the shared chain over-commits it (A8).
        let mut hog = probe("hog");
        hog.mu = Rational::new(1, 2);
        let v = st
            .apply(&Delta::AddStream {
                gateway: 1,
                stream: hog,
            })
            .unwrap();
        assert!(!v.is_admitted());
        assert_eq!(st.report(), &before);
        assert_eq!(st.spec(), &DeploySpec::pal2());
    }

    #[test]
    fn delta_errors_are_reported() {
        let st = AnalysisState::new(DeploySpec::pal2(), AnalysisOptions::default());
        assert_eq!(
            st.evaluate(&Delta::RemoveStream {
                gateway: 0,
                stream: "nope".into()
            }),
            Err(DeltaError::UnknownStream(0, "nope".into()))
        );
        assert_eq!(
            st.evaluate(&Delta::AddStream {
                gateway: 7,
                stream: probe("x")
            }),
            Err(DeltaError::UnknownGateway(7))
        );
        assert_eq!(
            st.evaluate(&Delta::AddStream {
                gateway: 0,
                stream: probe("ch1-front")
            }),
            Err(DeltaError::DuplicateStream(0, "ch1-front".into()))
        );
    }

    #[test]
    fn delta_script_parses() {
        let script = r#"{"deltas": [
            {"op": "add", "gateway": 1, "stream": {"name": "s", "mu": [1, 100],
             "eta_in": 8, "eta_out": 8, "reconfig": 20,
             "input_capacity": 64, "output_capacity": 64}},
            {"op": "remove", "gateway": 1, "stream": "s"},
            {"op": "retune", "stream": {"name": "s", "mu": [1, 200],
             "eta_in": 8, "eta_out": 8, "reconfig": 20,
             "input_capacity": 64, "output_capacity": 64}}
        ]}"#;
        let deltas = parse_delta_script(script).unwrap();
        assert_eq!(deltas.len(), 3);
        assert_eq!(deltas[0].gateway(), 1);
        assert!(matches!(&deltas[2], Delta::RetuneStream { stream, .. } if stream == "s"));
    }
}
