//! Incremental admission-control analysis: O(affected-gateways)
//! re-verification of the A1–A10 verdict under stream churn, plus the
//! run-time [`AdmissionController`] that splices accepted streams into a
//! *running* system.
//!
//! The paper's analysis is a design-time procedure over a fixed
//! deployment. A production system, though, sees streams join and leave
//! at traffic rates — and re-running the full analyzer per request is
//! wasteful precisely where it hurts: the expensive rules (A1's CSDF
//! self-timed execution, A2's exact minimum-buffer search) are *per
//! gateway pair* and a stream change touches exactly one pair. This
//! module follows the design-time/run-time split of the related
//! multi-mode work (see PAPERS.md): a full analysis up front caches its
//! per-rule intermediate facts ([`AnalysisState`]), and each
//! [`Delta`] — add, remove, retune or mode-switch one stream —
//! re-evaluates only the facts the change can reach:
//!
//! * the affected pair's A1–A6 diagnostics, τ̂ vector and utilisation
//!   ([`crate::rules`]'s `PairFacts`) — the expensive part, recomputed
//!   for **one** gateway;
//! * the pair's additive A7 ring-load contribution (`RingContrib`) on the
//!   hops of its path — recomputed for the same single gateway;
//! * every *cheap* system-scope coupling — A8 round interference through
//!   `shares_chain_with` groups (linear arithmetic over the cached τ̂
//!   vectors), A9 config-bus slot overlap, A10 latency composition —
//!   re-assembled from the cache in O(gateways + streams) scalar work
//!   with no model execution.
//!
//! The soundness contract is *equivalence by construction*: the full
//! analyzer ([`crate::analyze_with`]) is itself implemented as "compute
//! all facts, assemble report", and the incremental path reuses the same
//! assembly over a cache where only the affected entries were replaced.
//! Unaffected entries are pure functions of spec parts the delta cannot
//! touch, so **incremental verdict ≡ full re-analysis verdict, always**
//! — diagnostics, bounds and JSON bytes included (enforced by the
//! differential proptest in `tests/incremental_churn.rs`).

use crate::diag::Report;
use crate::profile::monitor_config_for;
use crate::rules::{assemble_report, transition_delay_bound, AnalysisOptions, Facts, ModeReport};
use crate::spec::{stream_from_json, stream_kernels, DeploySpec, StreamDeploy};
use crate::{json, Json};
use streamgate_core::Monitor;
use streamgate_platform::{CFifo, FifoId, StreamConfig, System};

/// One stream-churn request against a deployment.
#[derive(Clone, Debug, PartialEq)]
pub enum Delta {
    /// Deploy a new stream on gateway pair `gateway`.
    AddStream {
        /// Gateway (view) index the stream joins. Always 0 for
        /// single-gateway specs.
        gateway: usize,
        /// The stream to deploy.
        stream: StreamDeploy,
    },
    /// Tear down the named stream on gateway pair `gateway`.
    RemoveStream {
        /// Gateway (view) index the stream leaves.
        gateway: usize,
        /// Name of the stream to remove.
        stream: String,
    },
    /// Replace the named stream's configuration (rate, block sizes,
    /// capacities, budgets) in place.
    RetuneStream {
        /// Gateway (view) index of the stream.
        gateway: usize,
        /// Name of the stream to retune.
        stream: String,
        /// The replacement configuration (may carry a new name).
        with: StreamDeploy,
    },
    /// Switch the named stream to one of its *declared* modes
    /// ([`crate::spec::StreamModes`]): a retune constrained to the
    /// mode table, subject to the declaration's allowed-transition edges,
    /// with rule A12's predicted transition-delay bound attached to the
    /// outcome and armed on the online monitor.
    ModeSwitch {
        /// Gateway (view) index of the stream.
        gateway: usize,
        /// Name of the stream to switch.
        stream: String,
        /// Name of the declared target mode.
        mode: String,
    },
}

impl Delta {
    /// The gateway (view) index this delta touches — the *only* pair
    /// whose expensive per-pair facts need re-evaluation.
    pub fn gateway(&self) -> usize {
        match self {
            Delta::AddStream { gateway, .. }
            | Delta::RemoveStream { gateway, .. }
            | Delta::RetuneStream { gateway, .. }
            | Delta::ModeSwitch { gateway, .. } => *gateway,
        }
    }

    /// Short human-readable description (`add s3 @ gw1` style).
    pub fn describe(&self) -> String {
        match self {
            Delta::AddStream { gateway, stream } => {
                format!("add {} @ gateway {gateway}", stream.name)
            }
            Delta::RemoveStream { gateway, stream } => {
                format!("remove {stream} @ gateway {gateway}")
            }
            Delta::RetuneStream {
                gateway,
                stream,
                with,
            } => format!("retune {stream} -> {} @ gateway {gateway}", with.name),
            Delta::ModeSwitch {
                gateway,
                stream,
                mode,
            } => format!("switch {stream} to mode {mode} @ gateway {gateway}"),
        }
    }
}

/// Why a [`Delta`] could not even be *evaluated* (as opposed to being
/// evaluated and rejected).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta names a gateway the spec does not have.
    UnknownGateway(usize),
    /// The delta names a stream the gateway does not carry.
    UnknownStream(usize, String),
    /// An add/retune would create a second stream with the same name on
    /// the same gateway (names key the run-time splice and the monitor).
    DuplicateStream(usize, String),
    /// A mode switch names a mode the stream's [`crate::spec::StreamModes`]
    /// declaration does not carry (or the stream has no declaration at
    /// all): `(gateway, stream, mode)`.
    UnknownMode(usize, String, String),
    /// A mode switch requests an edge the declaration's allowed-transition
    /// list forbids: `(gateway, stream, from-mode, to-mode)`.
    TransitionNotAllowed(usize, String, String, String),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::UnknownGateway(g) => write!(f, "unknown gateway {g}"),
            DeltaError::UnknownStream(g, s) => {
                write!(f, "gateway {g} has no stream named {s:?}")
            }
            DeltaError::DuplicateStream(g, s) => {
                write!(f, "gateway {g} already has a stream named {s:?}")
            }
            DeltaError::UnknownMode(g, s, m) => {
                write!(f, "gateway {g} stream {s:?} declares no mode named {m:?}")
            }
            DeltaError::TransitionNotAllowed(g, s, from, to) => write!(
                f,
                "gateway {g} stream {s:?} does not allow the mode transition {from:?} -> {to:?}"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// The admission decision for one [`Delta`], carrying the full analyzer
/// report of the *candidate* deployment (the spec with the delta
/// applied) — identical, diagnostic for diagnostic, to what a fresh
/// [`crate::analyze_with`] of that candidate produces.
#[derive(Clone, Debug, PartialEq)]
pub enum AdmissionVerdict {
    /// The candidate deployment passes every rule: the change may be
    /// committed (and, via [`AdmissionController`], spliced into the
    /// running system).
    Admit(Report),
    /// The candidate deployment fails at least one rule at Error
    /// severity. Nothing is committed; the running system and every
    /// already-admitted stream's τ ≤ τ̂ bound are untouched.
    Reject(Report),
}

impl AdmissionVerdict {
    /// True for [`AdmissionVerdict::Admit`].
    pub fn is_admitted(&self) -> bool {
        matches!(self, AdmissionVerdict::Admit(_))
    }

    /// The candidate deployment's full report, either way.
    pub fn report(&self) -> &Report {
        match self {
            AdmissionVerdict::Admit(r) | AdmissionVerdict::Reject(r) => r,
        }
    }
}

/// Persistent analyzer state for incremental re-verification: the
/// current (committed) spec, the cached per-rule facts of its full
/// A1–A10 run, and the assembled report.
#[derive(Clone, Debug)]
pub struct AnalysisState {
    spec: DeploySpec,
    opts: AnalysisOptions,
    facts: Facts,
    report: Report,
}

impl AnalysisState {
    /// Run the full analysis once and cache every intermediate fact.
    pub fn new(spec: DeploySpec, opts: AnalysisOptions) -> AnalysisState {
        let facts = Facts::compute(&spec, &opts);
        let report = assemble_report(&spec, &facts);
        AnalysisState {
            spec,
            opts,
            facts,
            report,
        }
    }

    /// The committed deployment.
    pub fn spec(&self) -> &DeploySpec {
        &self.spec
    }

    /// The committed deployment's report.
    pub fn report(&self) -> &Report {
        &self.report
    }

    /// The rule A11 per-mode candidate reports of the committed spec,
    /// straight from the cached facts — no re-analysis. Byte-identical to
    /// [`crate::mode_reports`] of the committed spec (and therefore to a
    /// full `analyze_with` of each mode's single-mode candidate).
    pub fn mode_reports(&self) -> Vec<ModeReport> {
        self.spec
            .modes
            .iter()
            .zip(&self.facts.modes)
            .flat_map(|(decl, mf)| {
                mf.reports.iter().map(move |(name, r)| ModeReport {
                    gateway: decl.gateway,
                    stream: decl.stream.clone(),
                    mode: name.clone(),
                    report: r.clone(),
                })
            })
            .collect()
    }

    /// Apply `delta` to a clone of the committed spec, returning the
    /// candidate spec and the touched gateway index.
    fn candidate_spec(&self, delta: &Delta) -> Result<(DeploySpec, usize), DeltaError> {
        let mut spec = self.spec.clone();
        let g = delta.gateway();
        let streams: &mut Vec<StreamDeploy> = if spec.gateways.is_empty() {
            if g != 0 {
                return Err(DeltaError::UnknownGateway(g));
            }
            &mut spec.streams
        } else {
            match spec.gateways.get_mut(g) {
                Some(gw) => &mut gw.streams,
                None => return Err(DeltaError::UnknownGateway(g)),
            }
        };
        match delta {
            Delta::AddStream { stream, .. } => {
                if streams.iter().any(|s| s.name == stream.name) {
                    return Err(DeltaError::DuplicateStream(g, stream.name.clone()));
                }
                streams.push(stream.clone());
            }
            Delta::RemoveStream { stream, .. } => {
                let i = streams
                    .iter()
                    .position(|s| s.name == *stream)
                    .ok_or_else(|| DeltaError::UnknownStream(g, stream.clone()))?;
                streams.remove(i);
            }
            Delta::RetuneStream { stream, with, .. } => {
                let i = streams
                    .iter()
                    .position(|s| s.name == *stream)
                    .ok_or_else(|| DeltaError::UnknownStream(g, stream.clone()))?;
                if with.name != *stream && streams.iter().any(|s| s.name == with.name) {
                    return Err(DeltaError::DuplicateStream(g, with.name.clone()));
                }
                streams[i] = with.clone();
            }
            Delta::ModeSwitch { stream, mode, .. } => {
                let i = streams
                    .iter()
                    .position(|s| s.name == *stream)
                    .ok_or_else(|| DeltaError::UnknownStream(g, stream.clone()))?;
                let with = self.mode_config(g, stream, mode)?;
                // Transition edges only constrain switches *between
                // declared modes*: when the committed configuration is one
                // of the declared modes, the edge from it must be allowed.
                // A committed configuration outside the mode table (the
                // initial deployment) may enter any declared mode.
                let decl = self
                    .spec
                    .stream_modes(g, stream)
                    .expect("mode_config validated the declaration");
                let from = decl.modes.iter().find(|m| {
                    let mut c = m.config.clone();
                    c.name = stream.clone();
                    c == streams[i]
                });
                if let Some(from) = from {
                    if !decl.transition_allowed(&from.name, mode) {
                        return Err(DeltaError::TransitionNotAllowed(
                            g,
                            stream.clone(),
                            from.name.clone(),
                            mode.clone(),
                        ));
                    }
                }
                streams[i] = with;
            }
        }
        Ok((spec, g))
    }

    /// The committed configuration of the named stream, when present.
    fn committed_stream(&self, g: usize, name: &str) -> Option<&StreamDeploy> {
        let streams = if self.spec.gateways.is_empty() {
            if g != 0 {
                return None;
            }
            &self.spec.streams
        } else {
            &self.spec.gateways.get(g)?.streams
        };
        streams.iter().find(|s| s.name == name)
    }

    /// The named declared mode's configuration with the stream's name
    /// substituted — the `StreamDeploy` a [`Delta::ModeSwitch`] installs.
    fn mode_config(&self, g: usize, stream: &str, mode: &str) -> Result<StreamDeploy, DeltaError> {
        let m = self
            .spec
            .stream_modes(g, stream)
            .and_then(|d| d.mode(mode))
            .ok_or_else(|| DeltaError::UnknownMode(g, stream.to_string(), mode.to_string()))?;
        let mut with = m.config.clone();
        with.name = stream.to_string();
        Ok(with)
    }

    /// Evaluate `delta` without committing anything: recompute the
    /// touched gateway's facts on the candidate spec, re-assemble, and
    /// judge. The expensive per-pair rules run for **one** gateway; every
    /// other pair's cached facts are reused verbatim (they are functions
    /// of spec parts the delta cannot change).
    pub fn evaluate(&self, delta: &Delta) -> Result<AdmissionVerdict, DeltaError> {
        Ok(self.evaluate_candidate(delta)?.2)
    }

    /// Evaluate `delta` and, **iff admitted**, commit the candidate spec,
    /// facts and report as the new baseline. A rejected (or malformed)
    /// delta leaves the state bit-for-bit untouched — the non-disruptive
    /// reject path of the admission contract.
    pub fn apply(&mut self, delta: &Delta) -> Result<AdmissionVerdict, DeltaError> {
        let (spec, facts, verdict) = self.evaluate_candidate(delta)?;
        if let AdmissionVerdict::Admit(report) = &verdict {
            self.spec = spec;
            self.facts = facts;
            self.report = report.clone();
        }
        Ok(verdict)
    }

    fn candidate_report(spec: &DeploySpec, facts: &Facts) -> Report {
        assemble_report(spec, facts)
    }

    fn evaluate_candidate(
        &self,
        delta: &Delta,
    ) -> Result<(DeploySpec, Facts, AdmissionVerdict), DeltaError> {
        let (spec, g) = self.candidate_spec(delta)?;
        let mut facts = self.facts.clone();
        facts.recompute_gateway(&spec, g, &self.opts);
        let report = Self::candidate_report(&spec, &facts);
        let verdict = if report.is_accepted() {
            AdmissionVerdict::Admit(report)
        } else {
            AdmissionVerdict::Reject(report)
        };
        Ok((spec, facts, verdict))
    }
}

/// Parse a `--delta` admission script: a JSON object with a `deltas`
/// array whose entries are `{"op": "add", "gateway": N, "stream":
/// {...}}`, `{"op": "remove", "gateway": N, "stream": "name"}`,
/// `{"op": "retune", "gateway": N, "stream": {...}}` (retune matches the
/// existing stream by the new configuration's name unless a separate
/// `"target"` name is given) or `{"op": "switch", "gateway": N,
/// "stream": "name", "mode": "mode-name"}` (a [`Delta::ModeSwitch`] to a
/// declared mode). Stream objects use the spec-JSON stream encoding
/// (`name`, `mu: [num, den]`, `eta_in`, `eta_out`, `reconfig`,
/// `input_capacity`, `output_capacity`, optional `max_latency`).
/// `gateway` defaults to 0.
pub fn parse_delta_script(text: &str) -> Result<Vec<Delta>, String> {
    let top = json::parse(text)?;
    let arr = top
        .get("deltas")
        .and_then(Json::as_array)
        .ok_or("delta script without a deltas array")?;
    arr.iter()
        .enumerate()
        .map(|(i, d)| {
            let op = d
                .get("op")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("delta {i} without an op"))?;
            let gateway = d.get("gateway").and_then(Json::as_u64).unwrap_or(0) as usize;
            match op {
                "add" => Ok(Delta::AddStream {
                    gateway,
                    stream: stream_from_json(
                        d.get("stream")
                            .ok_or_else(|| format!("delta {i}: add without a stream object"))?,
                    )?,
                }),
                "remove" => Ok(Delta::RemoveStream {
                    gateway,
                    stream: d
                        .get("stream")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("delta {i}: remove without a stream name"))?
                        .to_string(),
                }),
                "retune" => {
                    let with =
                        stream_from_json(d.get("stream").ok_or_else(|| {
                            format!("delta {i}: retune without a stream object")
                        })?)?;
                    let target = d
                        .get("target")
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .unwrap_or_else(|| with.name.clone());
                    Ok(Delta::RetuneStream {
                        gateway,
                        stream: target,
                        with,
                    })
                }
                "switch" => Ok(Delta::ModeSwitch {
                    gateway,
                    stream: d
                        .get("stream")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("delta {i}: switch without a stream name"))?
                        .to_string(),
                    mode: d
                        .get("mode")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("delta {i}: switch without a mode name"))?
                        .to_string(),
                }),
                other => Err(format!("delta {i}: unknown op {other:?}")),
            }
        })
        .collect()
}

/// Why a run-time admission attempt failed beyond the analysis itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The delta was malformed against the committed spec.
    Delta(DeltaError),
    /// The platform could not be brought into the required state (an
    /// idle affected pair inside its config-bus slot) within the cycle
    /// budget — e.g. a saturated pair that never goes idle.
    Timeout(String),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Delta(e) => write!(f, "{e}"),
            AdmissionError::Timeout(m) => write!(f, "admission timeout: {m}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

impl From<DeltaError> for AdmissionError {
    fn from(e: DeltaError) -> AdmissionError {
        AdmissionError::Delta(e)
    }
}

/// What a run-time admission attempt did.
#[derive(Debug)]
pub struct AdmissionOutcome {
    /// The analysis verdict, with the candidate deployment's full report.
    pub verdict: AdmissionVerdict,
    /// Reconfiguration window `[start, end)` of the config-bus splice
    /// transaction, when the delta was admitted and touched the platform.
    pub window: Option<(u64, u64)>,
    /// C-FIFOs created for an admitted add/retune (input, output).
    pub fifos: Option<(FifoId, FifoId)>,
    /// The stream's index in its gateway's table after an admitted
    /// add/retune splice.
    pub stream_index: Option<usize>,
    /// Rule A12's predicted worst-case transition delay in cycles
    /// ([`crate::TransitionBound::total`]), for an admitted
    /// [`Delta::ModeSwitch`]: measured from the request cycle, the
    /// switched stream's first post-switch block is guaranteed to drain
    /// within it. `None` for every other delta kind.
    pub predicted_delay: Option<u64>,
}

/// Run-time admission control over a *running* [`System`]: consults the
/// incremental analyzer, and — only on [`AdmissionVerdict::Admit`] —
/// splices the change in through the configuration bus inside an
/// analyzed reconfiguration window, then re-arms the online [`Monitor`]
/// with the updated bounds.
///
/// Transition-window soundness (DESIGN.md §10): a splice-in is an
/// append-only stream-table write scheduled inside the pair's A9 bus
/// slot; it never touches the active block's table entry, the round-robin
/// cursor or the chain's data path, so every in-flight and co-deployed
/// stream keeps its τ ≤ τ̂ bound across the transition, and the new
/// stream's first block pays its full `R_s` through the ordinary
/// admission path exactly as Eq. 2 charges it. A splice-out additionally
/// waits for the pair to go idle, so no block is in flight on the
/// affected pair when its table shrinks. Rejects return before any
/// platform call — state mutation on the reject path is structurally
/// impossible.
pub struct AdmissionController {
    state: AnalysisState,
    /// Cycle budget for waiting on an idle pair, as a multiple of the
    /// committed γ (the analyzer's round bound: every admitted block
    /// completes within it, so a handful of rounds is ample slack).
    idle_rounds: u64,
}

impl AdmissionController {
    /// Controller over a committed baseline deployment. Runs the full
    /// analysis once; subsequent requests are incremental.
    pub fn new(spec: DeploySpec, opts: AnalysisOptions) -> AdmissionController {
        AdmissionController::from_state(AnalysisState::new(spec, opts))
    }

    /// Controller over an *existing* analyzer state — e.g. the one a sim
    /// bin's `--analyze` pre-flight already computed — so the full
    /// analysis runs exactly once per process.
    pub fn from_state(state: AnalysisState) -> AdmissionController {
        AdmissionController {
            state,
            idle_rounds: 8,
        }
    }

    /// The underlying incremental analyzer state.
    pub fn state(&self) -> &AnalysisState {
        &self.state
    }

    /// The committed deployment.
    pub fn spec(&self) -> &DeploySpec {
        self.state.spec()
    }

    /// The committed deployment's report.
    pub fn report(&self) -> &Report {
        self.state.report()
    }

    /// Evaluate a delta without touching the platform or committing
    /// anything — the pure analysis half of [`AdmissionController::request`].
    pub fn evaluate(&self, delta: &Delta) -> Result<AdmissionVerdict, DeltaError> {
        self.state.evaluate(delta)
    }

    /// Process one admission request against the running `system`.
    ///
    /// `gateway_map[v]` is the system gateway index of spec gateway view
    /// `v` — `[built.gateway]` for a `BuiltSystem`, `&built.gateways` for
    /// a [`crate::MultiBuiltSystem`] (both are identity mappings, which
    /// the monitor re-arming also relies on). `monitor`, when given, is
    /// re-armed with the updated τ̂/γ bounds after an admitted splice.
    ///
    /// On [`AdmissionVerdict::Reject`] the method returns *before any
    /// platform interaction*: the system, the committed spec and every
    /// admitted stream's bounds are untouched.
    pub fn request(
        &mut self,
        system: &mut System,
        gateway_map: &[usize],
        delta: &Delta,
        monitor: Option<&mut Monitor>,
    ) -> Result<AdmissionOutcome, AdmissionError> {
        let verdict = self.state.evaluate(delta)?;
        if !verdict.is_admitted() {
            return Ok(AdmissionOutcome {
                verdict,
                window: None,
                fifos: None,
                stream_index: None,
                predicted_delay: None,
            });
        }
        let g = delta.gateway();
        let sysg = *gateway_map.get(g).ok_or(DeltaError::UnknownGateway(g))?;

        // A12's transition-delay bound is anchored at the *request* cycle
        // (it budgets the drain/alignment waits the splice is about to
        // perform), so capture the clock before any platform interaction.
        let request_cycle = system.cycle();
        let predicted_delay = match delta {
            Delta::ModeSwitch { stream, mode, .. } => {
                let with = self.state.mode_config(g, stream, mode)?;
                let old = self
                    .state
                    .committed_stream(g, stream)
                    .ok_or_else(|| DeltaError::UnknownStream(g, stream.clone()))?
                    .clone();
                Some(
                    transition_delay_bound(
                        self.state.spec(),
                        g,
                        &old,
                        &with,
                        self.state.report().gamma,
                        verdict.report().gamma,
                    )
                    .total(),
                )
            }
            _ => None,
        };

        let (window, fifos, stream_index) = match delta {
            Delta::AddStream { stream, .. } => {
                let t = self.align_to_slot(system, g, stream.reconfig);
                let (i, o, idx) = self.splice_in(system, sysg, g, stream);
                (Some((t, t + stream.reconfig)), Some((i, o)), Some(idx))
            }
            Delta::RemoveStream { stream, .. } => {
                let (t, idx) = self.idle_in_slot(system, sysg, g, stream)?;
                let removed = system.splice_out_stream(sysg, idx);
                (Some((t, t + removed.reconfig_cycles)), None, None)
            }
            Delta::RetuneStream { stream, with, .. } => {
                let (t, idx) = self.idle_in_slot(system, sysg, g, stream)?;
                let _removed = system.splice_out_stream(sysg, idx);
                let (i, o, new_idx) = self.splice_in(system, sysg, g, with);
                (Some((t, t + with.reconfig)), Some((i, o)), Some(new_idx))
            }
            Delta::ModeSwitch { stream, mode, .. } => {
                // A mode switch is an *in-place* config-bus retune: the
                // table order and round-robin cursor survive, so every
                // non-switching stream keeps its index and its service
                // position through the transition window.
                let with = self.state.mode_config(g, stream, mode)?;
                let (t, idx) = self.idle_in_slot(system, sysg, g, stream)?;
                let (i, o, cfg) = self.build_entry(system, sysg, g, &with);
                let _old = system.retune_stream(sysg, idx, cfg);
                (Some((t, t + with.reconfig)), Some((i, o)), Some(idx))
            }
        };

        // Commit the analysis state. The candidate is the same one the
        // evaluate above admitted, so this cannot reject.
        let verdict = self.state.apply(delta)?;
        debug_assert!(verdict.is_admitted());

        if let Some(m) = monitor {
            m.rearm(monitor_config_for(
                self.state.spec(),
                self.state.report(),
                system,
            ));
            // Arm the run-time A12 check: the switched stream's first
            // post-switch block must drain within the predicted bound.
            if let (Delta::ModeSwitch { stream, .. }, Some(d)) = (delta, predicted_delay) {
                m.arm_transition_deadline(sysg, stream, request_cycle + d);
            }
        }
        Ok(AdmissionOutcome {
            verdict,
            window,
            fifos,
            stream_index,
            predicted_delay,
        })
    }

    /// Create the stream's C-FIFOs (named like the spec builders name
    /// them) and its table entry with passthrough kernels — the same
    /// kernels [`DeploySpec::build_platform`] installs. Shared by the
    /// append splice and the in-place mode-switch retune.
    fn build_entry(
        &self,
        system: &mut System,
        sysg: usize,
        g: usize,
        stream: &StreamDeploy,
    ) -> (FifoId, FifoId, StreamConfig) {
        let spec = self.state.spec();
        let (in_name, out_name) = if spec.is_multi() {
            let gw = &spec.gateways[g].name;
            (
                format!("{gw}:{}:in", stream.name),
                format!("{gw}:{}:out", stream.name),
            )
        } else {
            (
                format!("in:{}", stream.name),
                format!("out:{}", stream.name),
            )
        };
        let i = system.splice_fifo(CFifo::new(in_name, stream.input_capacity as usize));
        let o = system.splice_fifo(CFifo::new(out_name, stream.output_capacity as usize));
        let chain_len = system.gateways[sysg].chain.len();
        let kernels = stream_kernels(chain_len, stream.eta_in, stream.eta_out);
        let cfg = StreamConfig::new(
            stream.name.clone(),
            i,
            o,
            stream.eta_in as usize,
            stream.eta_out as usize,
            stream.reconfig,
            kernels,
        );
        (i, o, cfg)
    }

    /// [`AdmissionController::build_entry`] plus the append-only table
    /// splice; returns the new entry's index.
    fn splice_in(
        &self,
        system: &mut System,
        sysg: usize,
        g: usize,
        stream: &StreamDeploy,
    ) -> (FifoId, FifoId, usize) {
        let (i, o, cfg) = self.build_entry(system, sysg, g, stream);
        let idx = system.splice_stream(sysg, cfg);
        (i, o, idx)
    }

    /// Advance the system to the next cycle inside gateway `g`'s
    /// config-bus slot with at least `r` cycles of slot left (rule A9
    /// guarantees `r` fits any slot the pair declares). Specs without a
    /// bus frame splice immediately. Returns the splice cycle.
    fn align_to_slot(&self, system: &mut System, g: usize, r: u64) -> u64 {
        let spec = self.state.spec();
        let slot = spec
            .gateway_views()
            .get(g)
            .and_then(|v| v.config_slot)
            .zip(spec.config_bus_period);
        let Some(((off, len), period)) = slot else {
            return system.cycle();
        };
        let now = system.cycle();
        let latest = off + len.saturating_sub(r.min(len));
        let phase = now % period;
        let t = if (off..=latest).contains(&phase) {
            now
        } else if phase < off {
            now + (off - phase)
        } else {
            now + (period - phase) + off
        };
        if t > now {
            system.run(t - now);
        }
        system.cycle()
    }

    /// Bring gateway `sysg` to *idle inside its bus slot*: wait for the
    /// pair to finish its in-flight block (state predicate — fires at the
    /// same cycle in both engines), then align to the slot, re-verifying
    /// idleness after the alignment run, with bounded retries. Also
    /// resolves the target stream's current table index by name.
    fn idle_in_slot(
        &self,
        system: &mut System,
        sysg: usize,
        g: usize,
        stream: &str,
    ) -> Result<(u64, usize), AdmissionError> {
        let gamma = self.state.report().gamma.max(1);
        let budget = self.idle_rounds * gamma + 4000;
        for _ in 0..8 {
            let idle = system.gateways[sysg].is_idle()
                || system.run_until(budget, |s| s.gateways[sysg].is_idle());
            if !idle {
                return Err(AdmissionError::Timeout(format!(
                    "gateway {sysg} not idle within {budget} cycles (gamma = {gamma})"
                )));
            }
            let t = self.align_to_slot(system, g, 0);
            if system.gateways[sysg].is_idle() {
                let gw = &system.gateways[sysg];
                let idx = (0..gw.num_streams())
                    .find(|&i| gw.stream(i).name == stream)
                    .ok_or_else(|| {
                        AdmissionError::Delta(DeltaError::UnknownStream(g, stream.to_string()))
                    })?;
                return Ok((t, idx));
            }
        }
        Err(AdmissionError::Timeout(format!(
            "gateway {sysg} kept admitting blocks across its config-bus slot"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_with, DeploySpec};
    use streamgate_ilp::Rational;

    fn probe(name: &str) -> StreamDeploy {
        StreamDeploy {
            name: name.into(),
            mu: Rational::new(1, 1_000_000),
            eta_in: 8,
            eta_out: 8,
            reconfig: 20,
            input_capacity: 64,
            output_capacity: 64,
            max_latency: None,
        }
    }

    #[test]
    fn add_then_remove_matches_full_analysis() {
        let opts = AnalysisOptions::default();
        let mut st = AnalysisState::new(DeploySpec::pal2(), opts);
        let add = Delta::AddStream {
            gateway: 1,
            stream: probe("probe"),
        };
        let v = st.apply(&add).unwrap();
        assert!(v.is_admitted(), "{}", v.report().render_text());
        let mut full_spec = DeploySpec::pal2();
        full_spec.gateways[1].streams.push(probe("probe"));
        let full = analyze_with(&full_spec, &opts);
        assert_eq!(v.report(), &full);
        assert_eq!(v.report().to_json_text(), full.to_json_text());

        let rm = Delta::RemoveStream {
            gateway: 1,
            stream: "probe".into(),
        };
        let v = st.apply(&rm).unwrap();
        assert!(v.is_admitted());
        assert_eq!(v.report(), &analyze_with(&DeploySpec::pal2(), &opts));
    }

    #[test]
    fn reject_leaves_state_untouched() {
        let opts = AnalysisOptions::default();
        let mut st = AnalysisState::new(DeploySpec::pal2(), opts);
        let before = st.report().clone();
        // μ = 1/2 on the shared chain over-commits it (A8).
        let mut hog = probe("hog");
        hog.mu = Rational::new(1, 2);
        let v = st
            .apply(&Delta::AddStream {
                gateway: 1,
                stream: hog,
            })
            .unwrap();
        assert!(!v.is_admitted());
        assert_eq!(st.report(), &before);
        assert_eq!(st.spec(), &DeploySpec::pal2());
    }

    #[test]
    fn delta_errors_are_reported() {
        let st = AnalysisState::new(DeploySpec::pal2(), AnalysisOptions::default());
        assert_eq!(
            st.evaluate(&Delta::RemoveStream {
                gateway: 0,
                stream: "nope".into()
            }),
            Err(DeltaError::UnknownStream(0, "nope".into()))
        );
        assert_eq!(
            st.evaluate(&Delta::AddStream {
                gateway: 7,
                stream: probe("x")
            }),
            Err(DeltaError::UnknownGateway(7))
        );
        assert_eq!(
            st.evaluate(&Delta::AddStream {
                gateway: 0,
                stream: probe("ch1-front")
            }),
            Err(DeltaError::DuplicateStream(0, "ch1-front".into()))
        );
    }

    /// pal2 with a two-mode declaration (`slow` = the committed config,
    /// `fast` = a shorter reconfiguration window, so it stays inside the
    /// pair's A9 bus slot) on gateway 0's first stream, with the only
    /// allowed edge `slow -> fast`.
    fn pal2_with_modes() -> (DeploySpec, String) {
        let mut spec = DeploySpec::pal2();
        let slow = spec.gateways[0].streams[0].clone();
        let mut fast = slow.clone();
        fast.reconfig -= 16;
        let name = slow.name.clone();
        spec.modes = vec![crate::spec::StreamModes {
            gateway: 0,
            stream: name.clone(),
            modes: vec![
                crate::spec::StreamMode {
                    name: "slow".into(),
                    config: slow,
                },
                crate::spec::StreamMode {
                    name: "fast".into(),
                    config: fast,
                },
            ],
            transitions: vec![("slow".into(), "fast".into())],
        }];
        (spec, name)
    }

    #[test]
    fn mode_switch_matches_full_analysis_and_respects_edges() {
        let opts = AnalysisOptions::default();
        let (spec, name) = pal2_with_modes();
        let mut st = AnalysisState::new(spec.clone(), opts);

        // Unknown mode and no-declaration streams are delta errors.
        assert_eq!(
            st.evaluate(&Delta::ModeSwitch {
                gateway: 0,
                stream: name.clone(),
                mode: "turbo".into()
            }),
            Err(DeltaError::UnknownMode(0, name.clone(), "turbo".into()))
        );
        let other = spec.gateways[1].streams[0].name.clone();
        assert_eq!(
            st.evaluate(&Delta::ModeSwitch {
                gateway: 1,
                stream: other.clone(),
                mode: "fast".into()
            }),
            Err(DeltaError::UnknownMode(1, other, "fast".into()))
        );

        // slow -> fast is allowed and must equal the full analysis of the
        // spec with the fast config in force (modes declaration kept).
        let v = st
            .apply(&Delta::ModeSwitch {
                gateway: 0,
                stream: name.clone(),
                mode: "fast".into(),
            })
            .unwrap();
        assert!(v.is_admitted(), "{}", v.report().render_text());
        let mut full_spec = spec.clone();
        full_spec.gateways[0].streams[0] = spec.modes[0].modes[1].config.clone();
        full_spec.gateways[0].streams[0].name = name.clone();
        let full = analyze_with(&full_spec, &opts);
        assert_eq!(v.report().to_json_text(), full.to_json_text());

        // fast -> slow has no declared edge: rejected before analysis.
        assert_eq!(
            st.evaluate(&Delta::ModeSwitch {
                gateway: 0,
                stream: name.clone(),
                mode: "slow".into()
            }),
            Err(DeltaError::TransitionNotAllowed(
                0,
                name.clone(),
                "fast".into(),
                "slow".into()
            ))
        );
    }

    #[test]
    fn cached_mode_reports_match_recomputed_ones() {
        let (spec, _) = pal2_with_modes();
        let opts = AnalysisOptions::default();
        let st = AnalysisState::new(spec.clone(), opts);
        let cached = st.mode_reports();
        let fresh = crate::rules::mode_reports(&spec, &opts);
        assert_eq!(cached.len(), 2);
        assert_eq!(cached, fresh);
    }

    #[test]
    fn delta_script_parses() {
        let script = r#"{"deltas": [
            {"op": "add", "gateway": 1, "stream": {"name": "s", "mu": [1, 100],
             "eta_in": 8, "eta_out": 8, "reconfig": 20,
             "input_capacity": 64, "output_capacity": 64}},
            {"op": "remove", "gateway": 1, "stream": "s"},
            {"op": "retune", "stream": {"name": "s", "mu": [1, 200],
             "eta_in": 8, "eta_out": 8, "reconfig": 20,
             "input_capacity": 64, "output_capacity": 64}},
            {"op": "switch", "gateway": 1, "stream": "s", "mode": "fast"}
        ]}"#;
        let deltas = parse_delta_script(script).unwrap();
        assert_eq!(deltas.len(), 4);
        assert_eq!(deltas[0].gateway(), 1);
        assert!(matches!(&deltas[2], Delta::RetuneStream { stream, .. } if stream == "s"));
        assert_eq!(
            deltas[3],
            Delta::ModeSwitch {
                gateway: 1,
                stream: "s".into(),
                mode: "fast".into()
            }
        );
        assert!(parse_delta_script(r#"{"deltas": [{"op": "switch", "stream": "s"}]}"#).is_err());
    }
}
