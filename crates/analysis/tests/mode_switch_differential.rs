//! Differential validation of the multi-mode transition analysis (rules
//! A11–A13): randomized mode-switch scripts executed against BOTH
//! cycle-level simulation engines.
//!
//! The contract under test:
//!
//! * **A12 dominance** — for every admitted `ModeSwitch`, the measured
//!   delay from the request cycle to the drain of the switched stream's
//!   first post-switch block never exceeds the closed-form
//!   `TransitionBound::total` the controller predicted — on the
//!   exhaustive AND the event-driven engine, which must also agree with
//!   each other bit-for-bit on every figure;
//! * **A13 interference freedom** — non-switching streams keep making
//!   progress through every transition window, and the online monitor
//!   (armed with the analyzer's Eq. 2 / Eq. 3–4 / buffer bounds *and*
//!   the A12 deadline) stays silent for the whole run;
//! * **A11 equivalence** — the per-mode candidate reports served from the
//!   cached incremental facts are byte-identical to a full
//!   `analyze_with` of each mode's equivalent single-mode spec.
//!
//! Set `MODE_SWITCH_MARGINS_JSON=<path>` to write the randomized sweep's
//! measured-vs-predicted margins as a JSON artifact (uploaded by the CI
//! transition-delay smoke job).

mod common;

use common::{fast_options, multi_clean_cycles, random_multi_spec, Rng};
use streamgate_analysis::{
    analyze_with, mode_reports, monitor_for, AdmissionController, AnalysisState, Delta, DeploySpec,
    StreamMode, StreamModes,
};
use streamgate_core::measured_transition_delay;
use streamgate_ilp::Rational;
use streamgate_platform::StepMode;

const ENGINES: [StepMode; 2] = [StepMode::Exhaustive, StepMode::EventDriven];

/// Declare a two-mode table on gateway `g`'s first stream: "base" is the
/// committed configuration, "alt" halves the reconfiguration window
/// (always admissible: a smaller R_s shrinks γ and still fits the A9 bus
/// slot), drops any latency budget, and — on half the draws — halves the
/// demanded rate. Transitions stay fully connected.
fn declare_modes(spec: &mut DeploySpec, g: usize, rng: &mut Rng) {
    let base = spec.gateways[g].streams[0].clone();
    let mut alt = base.clone();
    alt.reconfig /= 2;
    alt.max_latency = None;
    if rng.next().is_multiple_of(2) {
        alt.mu = Rational::new(alt.mu.numer(), 2 * alt.mu.denom());
    }
    spec.modes = vec![StreamModes {
        gateway: g,
        stream: base.name.clone(),
        modes: vec![
            StreamMode {
                name: "base".into(),
                config: base,
            },
            StreamMode {
                name: "alt".into(),
                config: alt,
            },
        ],
        transitions: vec![],
    }];
}

/// What one engine measured for one randomized case — compared bit-for-bit
/// across engines.
#[derive(Debug, PartialEq, Eq)]
struct SwitchRun {
    request_cycle: u64,
    predicted: u64,
    measured: u64,
    blocks: Vec<u64>,
}

/// Run one randomized mode-switch script on one engine: baseline traffic,
/// an in-place mode switch with cross-pair traffic live through the
/// transition window, monitor armed throughout.
fn run_switch_case(
    spec: &DeploySpec,
    state: &AnalysisState,
    mode: StepMode,
    case: usize,
) -> SwitchRun {
    let decl = &spec.modes[0];
    let g = decl.gateway;
    let cycles = multi_clean_cycles(spec);

    let mut b = spec.build_multi_platform();
    b.system.step_mode = mode;
    b.system.enable_tracing(0);
    let mut monitor = monitor_for(spec, state.report(), &b.system);

    // Two blocks of input per stream so every pair is genuinely busy
    // before the switch arrives.
    for (gi, gw) in spec.gateways.iter().enumerate() {
        for (s, st) in gw.streams.iter().enumerate() {
            let f = b.inputs[gi][s];
            for k in 0..2 * st.eta_in {
                b.system.fifos[f.0].try_push((k as f64, 0.5), 0);
            }
        }
    }
    b.system.run(cycles);
    assert_eq!(
        monitor.poll(&b.system.tracer),
        0,
        "case {case} ({mode:?}): baseline run must be clean"
    );

    // Cross-pair traffic that will be live *during* the transition window
    // (the switching pair itself must drain to idle — that wait is what
    // A12's drain term bounds).
    for (gi, gw) in spec.gateways.iter().enumerate() {
        if gi == g {
            continue;
        }
        for (s, st) in gw.streams.iter().enumerate() {
            let f = b.inputs[gi][s];
            for k in 0..2 * st.eta_in {
                let now = b.system.cycle();
                b.system.fifos[f.0].try_push((k as f64, 0.5), now);
            }
        }
    }
    let pre_blocks: Vec<u64> = spec
        .gateways
        .iter()
        .enumerate()
        .flat_map(|(gi, gw)| {
            (0..gw.streams.len())
                .map(move |s| (gi, s))
                .collect::<Vec<_>>()
        })
        .map(|(gi, s)| b.system.gateways[b.gateways[gi]].stream(s).blocks_done)
        .collect();

    let mut ctrl = AdmissionController::from_state(state.clone());
    let gateways = b.gateways.clone();
    let request_cycle = b.system.cycle();
    let outcome = ctrl
        .request(
            &mut b.system,
            &gateways,
            &Delta::ModeSwitch {
                gateway: g,
                stream: decl.stream.clone(),
                mode: "alt".into(),
            },
            Some(&mut monitor),
        )
        .unwrap_or_else(|e| panic!("case {case} ({mode:?}): switch request failed: {e}"));
    assert!(
        outcome.verdict.is_admitted(),
        "case {case} ({mode:?}): declared alt mode must admit:\n{}",
        outcome.verdict.report().render_text()
    );
    let predicted = outcome
        .predicted_delay
        .expect("admitted mode switch carries an A12 bound");
    let idx = outcome.stream_index.expect("switch keeps the table index");
    let (fin, _fout) = outcome.fifos.expect("switch rebuilt the stream fifos");
    let eta = spec.gateways[g].streams[0].eta_in;
    for k in 0..eta {
        let now = b.system.cycle();
        b.system.fifos[fin.0].try_push((k as f64, 0.5), now);
    }
    b.system.run(cycles);
    assert_eq!(
        monitor.poll(&b.system.tracer),
        0,
        "case {case} ({mode:?}): monitor must stay silent across the \
         transition window (A13 + the armed A12 deadline): {:?}",
        monitor.violations()
    );
    let measured = measured_transition_delay(&b.system, gateways[g], idx, request_cycle)
        .unwrap_or_else(|| panic!("case {case} ({mode:?}): no post-switch block"));
    assert!(
        measured <= predicted,
        "case {case} ({mode:?}): A12 violated — measured transition delay \
         {measured} > predicted {predicted}"
    );

    // A13: every non-switching stream made its expected progress through
    // the transition (cross-pair streams ran the two fresh blocks; the
    // switching pair's siblings at least kept what they had).
    let mut flat = 0;
    let mut blocks = Vec::new();
    for (gi, gw) in spec.gateways.iter().enumerate() {
        for s in 0..gw.streams.len() {
            let n = b.system.gateways[gateways[gi]].stream(s).blocks_done;
            if gi != g {
                assert!(
                    n >= pre_blocks[flat] + 2,
                    "case {case} ({mode:?}): non-switching stream {gi}:{s} \
                     starved through the transition window ({n} blocks, had \
                     {} before)",
                    pre_blocks[flat]
                );
            } else if s != idx {
                assert!(
                    n >= pre_blocks[flat],
                    "case {case} ({mode:?}): sibling stream {gi}:{s} lost \
                     blocks across the in-place retune"
                );
            }
            blocks.push(n);
            flat += 1;
        }
    }

    SwitchRun {
        request_cycle,
        predicted,
        measured,
        blocks,
    }
}

/// A12/A13 randomized sweep: 48 random multi-gateway topologies, each with
/// a declared mode table, switched mid-run on both engines. Predicted must
/// dominate measured everywhere, engines must agree bit-for-bit, and the
/// monitor must stay silent for every non-switching stream.
#[test]
fn mode_switch_bounds_hold_on_both_engines() {
    let mut rng = Rng::new(0xA12A_1300);
    let mut margin_rows = Vec::new();
    for case in 0..48 {
        let mut spec = random_multi_spec(&mut rng, case);
        let g = (rng.next() % spec.gateways.len() as u64) as usize;
        declare_modes(&mut spec, g, &mut rng);
        let state = AnalysisState::new(spec.clone(), fast_options());
        assert!(
            state.report().is_accepted(),
            "case {case}: moded clean spec must stay accepted:\n{}",
            state.report().render_text()
        );

        let runs: Vec<SwitchRun> = ENGINES
            .iter()
            .map(|&mode| run_switch_case(&spec, &state, mode, case))
            .collect();
        assert_eq!(
            runs[0], runs[1],
            "case {case}: engines disagree on the transition measurements"
        );

        margin_rows.push(format!(
            "    {{\"case\": {case}, \"gateway\": {g}, \"stream\": \"{}\", \
             \"predicted\": {}, \"measured\": {}, \"margin\": {}}}",
            spec.modes[0].stream,
            runs[0].predicted,
            runs[0].measured,
            runs[0].predicted - runs[0].measured,
        ));
    }

    if let Ok(path) = std::env::var("MODE_SWITCH_MARGINS_JSON") {
        let body = format!(
            "{{\n  \"sweep\": \"mode_switch_differential\", \"cases\": [\n{}\n  ]\n}}\n",
            margin_rows.join(",\n")
        );
        std::fs::write(&path, body).expect("write MODE_SWITCH_MARGINS_JSON");
    }
}

/// A11 equivalence: per-mode candidate reports computed through the cached
/// incremental facts are byte-identical to a full analysis of each mode's
/// equivalent single-mode spec — for randomized declarations and through
/// both the free function and the cached `AnalysisState` path.
#[test]
fn per_mode_reports_are_byte_identical_to_full_analysis() {
    let opts = fast_options();
    let mut rng = Rng::new(0xA11_0001);
    for case in 0..12 {
        let mut spec = random_multi_spec(&mut rng, case);
        let g = (rng.next() % spec.gateways.len() as u64) as usize;
        declare_modes(&mut spec, g, &mut rng);

        let cached = AnalysisState::new(spec.clone(), opts).mode_reports();
        let free = mode_reports(&spec, &opts);
        assert_eq!(cached.len(), 2, "case {case}: two declared modes");
        assert_eq!(cached, free, "case {case}: cached vs free-function path");

        for mr in &cached {
            let config = &spec
                .stream_modes(mr.gateway, &mr.stream)
                .unwrap()
                .mode(&mr.mode)
                .unwrap()
                .config;
            let candidate = spec
                .single_mode_candidate(mr.gateway, &mr.stream, config)
                .unwrap();
            let full = analyze_with(&candidate, &opts);
            assert_eq!(
                mr.report, full,
                "case {case}: mode {} report diverges from full analysis",
                mr.mode
            );
            assert_eq!(
                mr.report.to_json_text(),
                full.to_json_text(),
                "case {case}: mode {} JSON bytes diverge",
                mr.mode
            );
        }
    }
}

/// pal2 with a cruise/eco mode table on ch1-front (eco shortens the
/// reconfiguration window by 16 cycles), fully connected transitions.
fn pal2_with_modes() -> DeploySpec {
    let mut spec = DeploySpec::pal2();
    let cruise = spec.gateways[0].streams[0].clone();
    let mut eco = cruise.clone();
    eco.reconfig -= 16;
    spec.modes = vec![StreamModes {
        gateway: 0,
        stream: cruise.name.clone(),
        modes: vec![
            StreamMode {
                name: "cruise".into(),
                config: cruise,
            },
            StreamMode {
                name: "eco".into(),
                config: eco,
            },
        ],
        transitions: vec![],
    }];
    spec
}

/// Pinned regression: a mode switch requested while the stream's own block
/// is inside its R_s reconfiguration window. The controller must wait out
/// the drain (the wait A12's drain term bounds), retune in place, and the
/// measured delay — anchored at the *request* cycle inside the window —
/// must still land under the predicted bound on both engines.
#[test]
fn switch_requested_inside_reconfig_window_respects_bound() {
    let spec = pal2_with_modes();
    let state = AnalysisState::new(spec.clone(), fast_options());
    assert!(state.report().is_accepted());

    for mode in ENGINES {
        let mut b = spec.build_multi_platform();
        b.system.step_mode = mode;
        b.system.enable_tracing(0);
        let mut monitor = monitor_for(&spec, state.report(), &b.system);

        // Start a ch1-front block and step into its R_s = 200 window.
        let eta = spec.gateways[0].streams[0].eta_in;
        let f = b.inputs[0][0];
        for k in 0..eta {
            b.system.fifos[f.0].try_push((k as f64, 0.0), 0);
        }
        b.system.run_until(1_000, |s| !s.gateways[0].is_idle());
        b.system.run(50);
        assert!(
            !b.system.gateways[b.gateways[0]].is_idle(),
            "gateway 0 should be mid-block (reconfig window)"
        );

        let mut ctrl = AdmissionController::from_state(state.clone());
        let gateways = b.gateways.clone();
        let t_req = b.system.cycle();
        let outcome = ctrl
            .request(
                &mut b.system,
                &gateways,
                &Delta::ModeSwitch {
                    gateway: 0,
                    stream: spec.modes[0].stream.clone(),
                    mode: "eco".into(),
                },
                Some(&mut monitor),
            )
            .expect("switch inside the reconfig window is well-formed");
        assert!(outcome.verdict.is_admitted());
        let predicted = outcome.predicted_delay.unwrap();
        let idx = outcome.stream_index.unwrap();
        let (fin, _fout) = outcome.fifos.unwrap();
        for k in 0..eta {
            let now = b.system.cycle();
            b.system.fifos[fin.0].try_push((k as f64, 0.0), now);
        }
        b.system.run(200_000);
        assert_eq!(
            monitor.poll(&b.system.tracer),
            0,
            "({mode:?}) monitor silent across an in-window switch: {:?}",
            monitor.violations()
        );
        let measured = measured_transition_delay(&b.system, gateways[0], idx, t_req)
            .expect("post-switch block ran");
        assert!(
            measured <= predicted,
            "({mode:?}) in-window switch: measured {measured} > predicted {predicted}"
        );
    }
}

/// Pinned regression: two switches back to back — the second issued
/// immediately after the first, with no simulation time or input in
/// between. Both must admit (the committed config after switch one is the
/// declared "eco" mode, so the fully connected edge set allows the return
/// trip), the table index must stay stable, and the first post-switch
/// block must clear BOTH armed A12 deadlines.
#[test]
fn back_to_back_switches_admit_and_respect_bounds() {
    let spec = pal2_with_modes();
    let state = AnalysisState::new(spec.clone(), fast_options());

    for mode in ENGINES {
        let mut b = spec.build_multi_platform();
        b.system.step_mode = mode;
        b.system.enable_tracing(0);
        let mut monitor = monitor_for(&spec, state.report(), &b.system);
        let mut ctrl = AdmissionController::from_state(state.clone());
        let gateways = b.gateways.clone();

        let t_req = b.system.cycle();
        let first = ctrl
            .request(
                &mut b.system,
                &gateways,
                &Delta::ModeSwitch {
                    gateway: 0,
                    stream: spec.modes[0].stream.clone(),
                    mode: "eco".into(),
                },
                Some(&mut monitor),
            )
            .expect("first switch well-formed");
        assert!(first.verdict.is_admitted());
        let second = ctrl
            .request(
                &mut b.system,
                &gateways,
                &Delta::ModeSwitch {
                    gateway: 0,
                    stream: spec.modes[0].stream.clone(),
                    mode: "cruise".into(),
                },
                Some(&mut monitor),
            )
            .expect("immediate back-switch well-formed");
        assert!(second.verdict.is_admitted());
        assert_eq!(first.stream_index, second.stream_index);
        let idx = second.stream_index.unwrap();

        // Feed the (cruise-again) stream; the second arm supersedes the
        // first deadline (inherited across the rearm, then re-anchored),
        // and the explicit assertion below holds the first post-switch
        // block to the tighter of the two predicted bounds anyway.
        let (fin, _fout) = second.fifos.unwrap();
        let eta = spec.gateways[0].streams[0].eta_in;
        for k in 0..eta {
            let now = b.system.cycle();
            b.system.fifos[fin.0].try_push((k as f64, 0.0), now);
        }
        b.system.run(200_000);
        assert_eq!(
            monitor.poll(&b.system.tracer),
            0,
            "({mode:?}) monitor silent across back-to-back switches: {:?}",
            monitor.violations()
        );
        let bound = first
            .predicted_delay
            .unwrap()
            .min(second.predicted_delay.unwrap());
        let measured = measured_transition_delay(&b.system, gateways[0], idx, t_req)
            .expect("post-switch block ran");
        assert!(
            measured <= bound,
            "({mode:?}) back-to-back: measured {measured} > tighter bound {bound}"
        );
    }
}
