//! Negative-path tests: three hand-built faulty deployments, each pinned to
//! the exact rule ID the analyzer must emit AND the matching failure the
//! cycle-level simulator must exhibit. Where the differential harness
//! randomises, these document the canonical failure modes one by one.

mod common;

use common::{fast_options, run_saturated};
use streamgate_analysis::{analyze, analyze_with, ChainStage, DeploySpec, StreamDeploy};
use streamgate_analysis::{RuleId, Severity};
use streamgate_core::system_metrics;
use streamgate_ilp::Rational;
use streamgate_platform::StepMode;

/// Two well-behaved streams over a one-accelerator chain — the baseline
/// every fault below perturbs.
fn baseline() -> DeploySpec {
    DeploySpec {
        name: "negative-baseline".into(),
        chain: vec![ChainStage {
            name: "acc".into(),
            rho: 2,
        }],
        epsilon: 3,
        delta: 1,
        ni_depth: 2,
        check_for_space: true,
        streams: (0..2)
            .map(|i| StreamDeploy {
                name: format!("s{i}"),
                mu: Rational::new(1, 40),
                eta_in: 8,
                eta_out: 8,
                reconfig: 10,
                input_capacity: 48,
                output_capacity: 64,
            })
            .collect(),
        processors: vec![],
    }
}

#[test]
fn baseline_is_accepted_and_runs() {
    let spec = baseline();
    let report = analyze(&spec);
    assert!(report.is_accepted(), "{}", report.render_text());
    let b = run_saturated(&spec, StepMode::EventDriven, 10_000);
    assert!(b.blocks_done(0) >= 3 && b.blocks_done(1) >= 3);
}

/// Fault 1 — undersized buffer: stream 1's input C-FIFO is one sample short
/// of a block. Expected: **A2 Error** (and the Fig. 5 model deadlocks, A1).
/// Simulator: the gateway never admits the stream — zero blocks, while the
/// healthy stream streams on.
#[test]
fn undersized_buffer_a2_error_matches_deadlock() {
    let mut spec = baseline();
    spec.streams[1].input_capacity = spec.streams[1].eta_in - 1;
    let report = analyze(&spec);
    assert!(report.has(RuleId::A2BufferCapacity, Severity::Error));
    assert!(report.has(RuleId::A1Liveness, Severity::Error));
    assert!(!report.is_accepted());

    for mode in [StepMode::Exhaustive, StepMode::EventDriven] {
        let b = run_saturated(&spec, mode, 10_000);
        assert_eq!(b.blocks_done(1), 0, "{mode:?}: starved stream made a block");
        assert!(
            b.blocks_done(0) >= 3,
            "{mode:?}: healthy stream must be unaffected"
        );
    }
}

/// Fault 2 — infeasible μ: stream 0 demands one sample per 8 cycles, but a
/// single round of the two-stream schedule provably takes longer than the
/// 64 cycles its block would need to arrive in. Expected: **A3 Error**.
/// Simulator: the measured block-to-block gap sustains a rate below μ.
#[test]
fn infeasible_mu_a3_error_matches_throughput_miss() {
    let mut spec = baseline();
    spec.streams[0].mu = Rational::new(1, 8);
    let report = analyze(&spec);
    assert!(report.has(RuleId::A3Throughput, Severity::Error));
    assert!(!report.is_accepted());

    let eta = spec.streams[0].eta_in as i128;
    let mu = spec.streams[0].mu;
    for mode in [StepMode::Exhaustive, StepMode::EventDriven] {
        let b = run_saturated(&spec, mode, 10_000);
        let metrics = system_metrics(&b.system, b.gateway);
        let starts: Vec<u64> = metrics
            .blocks
            .iter()
            .filter(|blk| blk.stream == 0)
            .map(|blk| blk.start)
            .collect();
        assert!(starts.len() >= 2, "{mode:?}: need two blocks to measure");
        let min_gap = starts.windows(2).map(|w| w[1] - w[0]).min().unwrap() as i128;
        assert!(
            eta * mu.denom() < min_gap * mu.numer(),
            "{mode:?}: η/gap = {eta}/{min_gap} sustains μ = {mu}"
        );
    }
}

/// Fault 3 — missing space check (Fig. 9): the exit gateway admits blocks
/// without verifying output space, and stream 1's consumer FIFO cannot hold
/// a block. Expected: **A5 Error**. Simulator: stream 1's block wedges in
/// the shared chain and head-of-line-blocks stream 0 — which, with the
/// check enabled (same capacities), is completely unaffected.
#[test]
fn missing_space_check_a5_error_matches_wedge() {
    let mut wedged = baseline();
    wedged.check_for_space = false;
    wedged.streams[1].output_capacity = wedged.streams[1].eta_out - 1;
    let report = analyze_with(&wedged, &fast_options());
    assert!(report.has(RuleId::A5SpaceCheck, Severity::Error));
    assert!(!report.is_accepted());

    // Same capacities, admission test ON: rejected for stream 1 (A2) but
    // stream 0 must be untouched — the check converts "everyone wedges"
    // into "only the undersized stream is held back".
    let mut checked = wedged.clone();
    checked.check_for_space = true;
    let checked_report = analyze_with(&checked, &fast_options());
    assert!(checked_report.has(RuleId::A2BufferCapacity, Severity::Error));

    for mode in [StepMode::Exhaustive, StepMode::EventDriven] {
        let b = run_saturated(&wedged, mode, 10_000);
        assert_eq!(b.blocks_done(1), 0, "{mode:?}: wedged stream completed");
        assert!(
            b.blocks_done(0) <= 1,
            "{mode:?}: stream 0 did {} blocks through a wedged chain",
            b.blocks_done(0)
        );

        let b = run_saturated(&checked, mode, 10_000);
        assert_eq!(b.blocks_done(1), 0, "{mode:?}: undersized stream admitted");
        assert!(
            b.blocks_done(0) >= 3,
            "{mode:?}: with the check, stream 0 must be unaffected (did {})",
            b.blocks_done(0)
        );
    }
}
