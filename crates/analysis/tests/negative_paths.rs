//! Negative-path tests: hand-built faulty deployments, each pinned to the
//! exact rule ID the analyzer must emit AND the matching failure the
//! cycle-level simulator must exhibit (for the system-scope rules A7/A8,
//! the rate collapse of the shared ring hop / shared chain; A9/A10 concern
//! configuration-time resources only the analyzer sees, so their pins are
//! on the exact reported arithmetic). Where the differential harness
//! randomises, these document the canonical failure modes one by one.

mod common;

use common::{fast_options, run_saturated, run_saturated_multi};
use streamgate_analysis::{analyze, analyze_with, ChainStage, DeploySpec, StreamDeploy};
use streamgate_analysis::{RuleId, Severity};
use streamgate_core::system_metrics;
use streamgate_ilp::Rational;
use streamgate_platform::StepMode;

/// Two well-behaved streams over a one-accelerator chain — the baseline
/// every fault below perturbs.
fn baseline() -> DeploySpec {
    DeploySpec {
        name: "negative-baseline".into(),
        chain: vec![ChainStage {
            name: "acc".into(),
            rho: 2,
        }],
        epsilon: 3,
        delta: 1,
        ni_depth: 2,
        check_for_space: true,
        streams: (0..2)
            .map(|i| StreamDeploy {
                name: format!("s{i}"),
                mu: Rational::new(1, 40),
                eta_in: 8,
                eta_out: 8,
                reconfig: 10,
                input_capacity: 48,
                output_capacity: 64,
                max_latency: None,
            })
            .collect(),
        processors: vec![],
        gateways: vec![],
        config_bus_period: None,
        station_map: None,
        modes: vec![],
    }
}

#[test]
fn baseline_is_accepted_and_runs() {
    let spec = baseline();
    let report = analyze(&spec);
    assert!(report.is_accepted(), "{}", report.render_text());
    let b = run_saturated(&spec, StepMode::EventDriven, 10_000);
    assert!(b.blocks_done(0) >= 3 && b.blocks_done(1) >= 3);
}

/// Fault 1 — undersized buffer: stream 1's input C-FIFO is one sample short
/// of a block. Expected: **A2 Error** (and the Fig. 5 model deadlocks, A1).
/// Simulator: the gateway never admits the stream — zero blocks, while the
/// healthy stream streams on.
#[test]
fn undersized_buffer_a2_error_matches_deadlock() {
    let mut spec = baseline();
    spec.streams[1].input_capacity = spec.streams[1].eta_in - 1;
    let report = analyze(&spec);
    assert!(report.has(RuleId::A2BufferCapacity, Severity::Error));
    assert!(report.has(RuleId::A1Liveness, Severity::Error));
    assert!(!report.is_accepted());

    for mode in [StepMode::Exhaustive, StepMode::EventDriven] {
        let b = run_saturated(&spec, mode, 10_000);
        assert_eq!(b.blocks_done(1), 0, "{mode:?}: starved stream made a block");
        assert!(
            b.blocks_done(0) >= 3,
            "{mode:?}: healthy stream must be unaffected"
        );
    }
}

/// Fault 2 — infeasible μ: stream 0 demands one sample per 8 cycles, but a
/// single round of the two-stream schedule provably takes longer than the
/// 64 cycles its block would need to arrive in. Expected: **A3 Error**.
/// Simulator: the measured block-to-block gap sustains a rate below μ.
#[test]
fn infeasible_mu_a3_error_matches_throughput_miss() {
    let mut spec = baseline();
    spec.streams[0].mu = Rational::new(1, 8);
    let report = analyze(&spec);
    assert!(report.has(RuleId::A3Throughput, Severity::Error));
    assert!(!report.is_accepted());

    let eta = spec.streams[0].eta_in as i128;
    let mu = spec.streams[0].mu;
    for mode in [StepMode::Exhaustive, StepMode::EventDriven] {
        let b = run_saturated(&spec, mode, 10_000);
        let metrics = system_metrics(&b.system, b.gateway);
        let starts: Vec<u64> = metrics
            .blocks
            .iter()
            .filter(|blk| blk.stream == 0)
            .map(|blk| blk.start)
            .collect();
        assert!(starts.len() >= 2, "{mode:?}: need two blocks to measure");
        let min_gap = starts.windows(2).map(|w| w[1] - w[0]).min().unwrap() as i128;
        assert!(
            eta * mu.denom() < min_gap * mu.numer(),
            "{mode:?}: η/gap = {eta}/{min_gap} sustains μ = {mu}"
        );
    }
}

/// Fault 3 — missing space check (Fig. 9): the exit gateway admits blocks
/// without verifying output space, and stream 1's consumer FIFO cannot hold
/// a block. Expected: **A5 Error**. Simulator: stream 1's block wedges in
/// the shared chain and head-of-line-blocks stream 0 — which, with the
/// check enabled (same capacities), is completely unaffected.
#[test]
fn missing_space_check_a5_error_matches_wedge() {
    let mut wedged = baseline();
    wedged.check_for_space = false;
    wedged.streams[1].output_capacity = wedged.streams[1].eta_out - 1;
    let report = analyze_with(&wedged, &fast_options());
    assert!(report.has(RuleId::A5SpaceCheck, Severity::Error));
    assert!(!report.is_accepted());

    // Same capacities, admission test ON: rejected for stream 1 (A2) but
    // stream 0 must be untouched — the check converts "everyone wedges"
    // into "only the undersized stream is held back".
    let mut checked = wedged.clone();
    checked.check_for_space = true;
    let checked_report = analyze_with(&checked, &fast_options());
    assert!(checked_report.has(RuleId::A2BufferCapacity, Severity::Error));

    for mode in [StepMode::Exhaustive, StepMode::EventDriven] {
        let b = run_saturated(&wedged, mode, 10_000);
        assert_eq!(b.blocks_done(1), 0, "{mode:?}: wedged stream completed");
        assert!(
            b.blocks_done(0) <= 1,
            "{mode:?}: stream 0 did {} blocks through a wedged chain",
            b.blocks_done(0)
        );

        let b = run_saturated(&checked, mode, 10_000);
        assert_eq!(b.blocks_done(1), 0, "{mode:?}: undersized stream admitted");
        assert!(
            b.blocks_done(0) >= 3,
            "{mode:?}: with the check, stream 0 must be unaffected (did {})",
            b.blocks_done(0)
        );
    }
}

/// A multi-gateway baseline for the system-scope faults: two single-stream
/// pairs with their own one-stage chains on one 6-station ring, modest
/// rates, generous NIs — accepted, and both pairs stream in simulation.
fn multi_baseline() -> DeploySpec {
    let gw = |n: usize, mu: Rational| streamgate_analysis::GatewayDeploy {
        name: format!("gw{n}"),
        chain: vec![ChainStage {
            name: format!("acc{n}"),
            rho: 1,
        }],
        shares_chain_with: None,
        streams: vec![StreamDeploy {
            name: format!("s{n}"),
            mu,
            eta_in: 8,
            eta_out: 8,
            reconfig: 4,
            input_capacity: 64,
            output_capacity: 96,
            max_latency: None,
        }],
        config_slot: None,
    };
    DeploySpec {
        name: "multi-negative-baseline".into(),
        chain: vec![],
        epsilon: 1,
        delta: 1,
        ni_depth: 8,
        check_for_space: true,
        streams: vec![],
        processors: vec![],
        gateways: vec![gw(0, Rational::new(1, 20)), gw(1, Rational::new(1, 20))],
        config_bus_period: None,
        station_map: None,
        modes: vec![],
    }
}

#[test]
fn multi_baseline_is_accepted_and_runs() {
    let spec = multi_baseline();
    let report = analyze(&spec);
    assert!(report.is_accepted(), "{}", report.render_text());
    let b = run_saturated_multi(&spec, StepMode::EventDriven, 10_000);
    for g in 0..2 {
        assert!(b.system.gateways[b.gateways[g]].stream(0).blocks_done >= 3);
    }
}

/// Per-stream sustained block rates `η / min(start-to-start gap)` of the
/// two single-stream pairs.
fn sustained_ok(spec: &DeploySpec, b: &streamgate_analysis::MultiBuiltSystem) -> Vec<bool> {
    (0..2)
        .map(|g| {
            let mu = spec.gateways[g].streams[0].mu;
            let eta = spec.gateways[g].streams[0].eta_in as i128;
            let starts: Vec<u64> = system_metrics(&b.system, b.gateways[g])
                .blocks
                .iter()
                .map(|blk| blk.start)
                .collect();
            if starts.len() < 2 {
                return false; // not even two blocks: decisive miss
            }
            let min_gap = starts.windows(2).map(|w| w[1] - w[0]).min().unwrap() as i128;
            eta * mu.denom() >= min_gap * mu.numer()
        })
        .collect()
}

/// Fault 4 — ring over-commitment (A7): both pairs demand μ = 2/3 through
/// the ring hops their paths share. Each pair is locally clean (A3
/// passes), but two 2/3-rate flows cannot cross a 1-flit/cycle hop.
/// Expected: **A7 Error**. Simulator: the pairs cannot BOTH sustain μ.
#[test]
fn ring_overcommit_a7_error_matches_rate_collapse() {
    let mut spec = multi_baseline();
    for g in 0..2 {
        spec.gateways[g].streams[0].mu = Rational::new(2, 3);
        spec.gateways[g].streams[0].reconfig = 1;
    }
    let report = analyze(&spec);
    assert!(report.has(RuleId::A7RingContention, Severity::Error));
    assert!(!report.has(RuleId::A3Throughput, Severity::Error));
    assert!(!report.is_accepted());

    for mode in [StepMode::Exhaustive, StepMode::EventDriven] {
        let b = run_saturated_multi(&spec, mode, 10_000);
        let ok = sustained_ok(&spec, &b);
        assert!(
            !(ok[0] && ok[1]),
            "{mode:?}: both pairs sustained mu = 2/3 across a shared \
             1-flit/cycle hop — A7's rejection would be a false alarm"
        );
    }
}

/// Fault 5 — shared-chain over-commitment (A8): the pairs share ONE
/// physical accelerator and each demands μ = 1/2, claiming the chain
/// 2·(μ·τ̂/η) = 11/8 > 1 of the time. Each pair is locally clean.
/// Expected: **A8 Error**. Simulator: block-by-block round-robin on the
/// chain caps each pair near half the chain throughput — the pairs cannot
/// BOTH sustain μ.
#[test]
fn shared_chain_overcommit_a8_error_matches_rate_collapse() {
    let mut spec = multi_baseline();
    spec.gateways[1].chain = vec![];
    spec.gateways[1].shares_chain_with = Some(0);
    for g in 0..2 {
        spec.gateways[g].streams[0].mu = Rational::new(1, 2);
        spec.gateways[g].streams[0].reconfig = 1;
    }
    let report = analyze(&spec);
    assert!(report.has(RuleId::A8SystemRound, Severity::Error));
    assert!(!report.has(RuleId::A3Throughput, Severity::Error));
    assert!(!report.is_accepted());

    for mode in [StepMode::Exhaustive, StepMode::EventDriven] {
        let b = run_saturated_multi(&spec, mode, 10_000);
        let ok = sustained_ok(&spec, &b);
        assert!(
            !(ok[0] && ok[1]),
            "{mode:?}: both pairs sustained mu = 1/2 on ONE serialised \
             chain — A8's rejection would be a false alarm"
        );
    }
}

/// Fault 6 — configuration-bus slot conflict (A9): both pairs' reconfig
/// slots overlap in the TDM frame, so two gateways would drive the shared
/// config bus at once. Expected: **A9 Error**, with the exact colliding
/// window named. (The bus is a configuration-time resource; the analyzer
/// is the only layer that sees the table, so the pin is on the arithmetic.)
#[test]
fn config_slot_overlap_a9_error_pins_the_window() {
    let mut spec = multi_baseline();
    spec.config_bus_period = Some(10);
    spec.gateways[0].config_slot = Some((0, 6));
    spec.gateways[1].config_slot = Some((4, 4));
    let report = analyze(&spec);
    let err = report
        .diagnostics
        .iter()
        .find(|d| d.rule == RuleId::A9SlotConflict && d.severity == Severity::Error)
        .expect("A9 error");
    assert!(
        err.message
            .contains("gw0's [0, 6) collides with gw1's slot starting at 4"),
        "{}",
        err.message
    );
    assert!(!report.is_accepted());
}

/// Fault 7 — impossible latency budget (A10): the budget is below the
/// idle-chain lower bound fill + R + (η−1)·ε, which no schedule can beat.
/// Expected: **A10 Error** quoting that exact bound. With μ = 1/20 and
/// η = 8: fill = ⌈7·20⌉ = 140, R = 4, DMA = 7 → floor 151 cycles.
#[test]
fn impossible_latency_budget_a10_error_pins_the_floor() {
    let mut spec = multi_baseline();
    spec.gateways[0].streams[0].max_latency = Some(150);
    let report = analyze(&spec);
    let err = report
        .diagnostics
        .iter()
        .find(|d| d.rule == RuleId::A10EndToEndLatency && d.severity == Severity::Error)
        .expect("A10 error");
    assert!(
        err.message
            .contains(">= 151 cycles (fill 140 + R 4 + DMA 7) > max_latency 150"),
        "{}",
        err.message
    );
    assert!(!report.is_accepted());

    // One cycle more and the whole Fig. 7 worst case fits: accepted.
    spec.gateways[0].streams[0].max_latency = Some(10_000);
    let report = analyze(&spec);
    assert!(report.is_accepted(), "{}", report.render_text());
}
