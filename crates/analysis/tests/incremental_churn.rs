//! Differential test for the incremental admission-control analyzer:
//! random join/leave/retune/mode-switch churn against multi-gateway
//! deployments, with the full analyzer as oracle at **every** step.
//!
//! The soundness contract of `analysis::incremental` is equivalence by
//! construction — `AnalysisState::apply` must produce, for every delta,
//! the verdict AND the byte-identical report a fresh full `analyze_with`
//! of the candidate deployment produces, while rejected deltas leave the
//! committed state untouched. This file enforces exactly that, plus
//! pinned regressions for the two historically delicate orderings:
//! reject-then-admit (a rejected request must not poison the cache) and
//! admit-during-reconfig-window (a splice while another stream is inside
//! its R_s window is legal by the append-only design).

mod common;

use common::{fast_options, random_multi_spec, Rng};
use proptest::prelude::*;
use streamgate_analysis::{
    analyze_with, AdmissionController, AnalysisState, Delta, DeploySpec, StreamDeploy, StreamMode,
    StreamModes,
};
use streamgate_ilp::Rational;

/// Reference mutation: apply `delta` to a spec the slow, obvious way.
fn apply_delta(spec: &DeploySpec, delta: &Delta) -> DeploySpec {
    let switch_cfg = if let Delta::ModeSwitch {
        gateway,
        stream,
        mode,
    } = delta
    {
        let decl = spec
            .modes
            .iter()
            .find(|m| m.gateway == *gateway && m.stream == *stream)
            .unwrap();
        let mut cfg = decl
            .modes
            .iter()
            .find(|m| m.name == *mode)
            .unwrap()
            .config
            .clone();
        cfg.name = stream.clone();
        Some(cfg)
    } else {
        None
    };
    let mut s = spec.clone();
    let streams = if s.gateways.is_empty() {
        &mut s.streams
    } else {
        &mut s.gateways[delta.gateway()].streams
    };
    match delta {
        Delta::AddStream { stream, .. } => streams.push(stream.clone()),
        Delta::RemoveStream { stream, .. } => {
            let i = streams.iter().position(|x| x.name == *stream).unwrap();
            streams.remove(i);
        }
        Delta::RetuneStream { stream, with, .. } => {
            let i = streams.iter().position(|x| x.name == *stream).unwrap();
            streams[i] = with.clone();
        }
        Delta::ModeSwitch { stream, .. } => {
            let i = streams.iter().position(|x| x.name == *stream).unwrap();
            streams[i] = switch_cfg.unwrap();
        }
    }
    s
}

/// One churn step decoded from proptest-drawn bytes. `op` selects
/// add/remove/retune, the rest parameterise the stream; rates span both
/// sides of the Eq. 5 feasibility boundary so the sequence mixes admits
/// and rejects.
fn decode_delta(
    spec: &DeploySpec,
    gamma: u64,
    counter: &mut usize,
    (op, gw_sel, st_sel, eta_sel, mu_sel): (u8, u8, u8, u8, u8),
) -> Delta {
    let n_views = spec.gateways.len().max(1);
    let gateway = gw_sel as usize % n_views;
    let existing: Vec<String> = if spec.gateways.is_empty() {
        spec.streams.iter().map(|s| s.name.clone()).collect()
    } else {
        spec.gateways[gateway]
            .streams
            .iter()
            .map(|s| s.name.clone())
            .collect()
    };
    let eta = 4 + eta_sel as u64 % 21;
    let make = |name: String| StreamDeploy {
        name,
        // η / (f·γ): f = 1 sits at the round bound (usually rejected
        // through A8 interference), larger f admits.
        mu: Rational::new(
            eta as i128,
            ((1 + mu_sel as u64 % 8) * gamma.max(1)) as i128,
        ),
        eta_in: eta,
        eta_out: eta,
        reconfig: st_sel as u64 % 40,
        input_capacity: 6 * eta,
        output_capacity: 8 * eta,
        max_latency: None,
    };
    // A declared mode switch is only decodable while the moded stream is
    // still deployed (churn may have removed it).
    let switchable = spec.modes.first().and_then(|decl| {
        let streams = if spec.gateways.is_empty() {
            &spec.streams
        } else {
            &spec.gateways.get(decl.gateway)?.streams
        };
        streams
            .iter()
            .any(|s| s.name == decl.stream)
            .then(|| (decl.gateway, decl.stream.clone(), decl.modes.clone()))
    });
    match op % 4 {
        1 if !existing.is_empty() => Delta::RemoveStream {
            gateway,
            stream: existing[st_sel as usize % existing.len()].clone(),
        },
        2 if !existing.is_empty() => {
            let target = existing[st_sel as usize % existing.len()].clone();
            Delta::RetuneStream {
                gateway,
                stream: target.clone(),
                with: make(target),
            }
        }
        3 if switchable.is_some() => {
            let (gateway, stream, modes) = switchable.unwrap();
            Delta::ModeSwitch {
                gateway,
                stream,
                mode: modes[mu_sel as usize % modes.len()].name.clone(),
            }
        }
        _ => {
            *counter += 1;
            Delta::AddStream {
                gateway,
                stream: make(format!("join{counter}")),
            }
        }
    }
}

/// Drive a churn sequence, checking incremental ≡ full at every step.
fn run_churn(seed: u64, steps: &[(u8, u8, u8, u8, u8)]) {
    let opts = fast_options();
    let mut rng = Rng::new(seed);
    let mut spec = random_multi_spec(&mut rng, seed as usize);
    // Declare a two-mode table on gateway 0's first stream so mode
    // switches join the churn mix: "base" is the committed configuration,
    // "burst" trades a longer reconfiguration window (different τ̂, γ and
    // A12/A13 figures) at the same rate. Transitions stay fully connected
    // so back-to-back switches in any order are legal.
    if let Some(slow) = spec.gateways.first().and_then(|g| g.streams.first()) {
        let slow = slow.clone();
        let mut burst = slow.clone();
        burst.reconfig += 16;
        spec.modes = vec![StreamModes {
            gateway: 0,
            stream: slow.name.clone(),
            modes: vec![
                StreamMode {
                    name: "base".into(),
                    config: slow,
                },
                StreamMode {
                    name: "burst".into(),
                    config: burst,
                },
            ],
            transitions: vec![],
        }];
    }
    let mut state = AnalysisState::new(spec.clone(), opts);
    let mut counter = 0;
    for &step in steps {
        let delta = decode_delta(&spec, state.report().gamma, &mut counter, step);
        let candidate = apply_delta(&spec, &delta);
        let full = analyze_with(&candidate, &opts);
        let verdict = state.apply(&delta).expect("decoded deltas are well-formed");

        // The heart of the contract: same Report, down to the JSON bytes.
        assert_eq!(verdict.report(), &full, "delta {}", delta.describe());
        assert_eq!(verdict.report().to_json_text(), full.to_json_text());
        assert_eq!(verdict.is_admitted(), full.is_accepted());

        if verdict.is_admitted() {
            spec = candidate;
        }
        // Admit or reject, the committed state must equal a from-scratch
        // analysis of the committed spec.
        assert_eq!(state.spec(), &spec);
        assert_eq!(state.report(), &analyze_with(&spec, &opts));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn incremental_matches_full_at_every_step(
        seed in 0u64..1_000_000,
        steps in proptest::collection::vec(
            (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 1..8),
    ) {
        run_churn(seed, &steps);
    }
}

/// Pinned regression: a rejected request must not poison the cached
/// facts — the next (admissible) request must still match the oracle.
#[test]
fn reject_then_admit_keeps_cache_sound() {
    let opts = fast_options();
    let mut state = AnalysisState::new(DeploySpec::pal2(), opts);
    let hog = StreamDeploy {
        name: "hog".into(),
        mu: Rational::new(1, 2),
        eta_in: 8,
        eta_out: 8,
        reconfig: 20,
        input_capacity: 64,
        output_capacity: 64,
        max_latency: None,
    };
    let probe = StreamDeploy {
        name: "probe".into(),
        mu: Rational::new(1, 1_000_000),
        ..hog.clone()
    };

    let v = state
        .apply(&Delta::AddStream {
            gateway: 1,
            stream: hog,
        })
        .unwrap();
    assert!(!v.is_admitted());
    assert_eq!(state.spec(), &DeploySpec::pal2());

    let v = state
        .apply(&Delta::AddStream {
            gateway: 1,
            stream: probe.clone(),
        })
        .unwrap();
    assert!(v.is_admitted());
    let mut full_spec = DeploySpec::pal2();
    full_spec.gateways[1].streams.push(probe);
    assert_eq!(v.report(), &analyze_with(&full_spec, &opts));
}

/// Pinned regression: an admitted splice while another stream sits inside
/// its reconfiguration window is legal — the splice is append-only, so the
/// in-flight block (and its τ bound) is untouched, and the system keeps
/// running to completion with the new stream live.
#[test]
fn admit_during_reconfig_window() {
    let spec = DeploySpec::pal2();
    let mut built = spec.build_multi_platform();

    // Start a block on gateway 0: fill ch1-front's input so a block is
    // admitted, then step into its R_s = 200 reconfiguration window.
    let eta = spec.gateways[0].streams[0].eta_in;
    let f = built.inputs[0][0];
    for k in 0..eta {
        built.system.fifos[f.0].try_push((k as f64, 0.0), 0);
    }
    built.system.run_until(1_000, |s| !s.gateways[0].is_idle());
    built.system.run(50);
    assert!(
        !built.system.gateways[built.gateways[0]].is_idle(),
        "gateway 0 should be mid-block (reconfig window)"
    );

    let mut ctrl = AdmissionController::new(spec.clone(), fast_options());
    let probe = StreamDeploy {
        name: "probe".into(),
        mu: Rational::new(1, 1_000_000),
        eta_in: 8,
        eta_out: 8,
        reconfig: 20,
        input_capacity: 64,
        output_capacity: 64,
        max_latency: None,
    };
    let gateways = built.gateways.clone();
    let outcome = ctrl
        .request(
            &mut built.system,
            &gateways,
            &Delta::AddStream {
                gateway: 0,
                stream: probe,
            },
            None,
        )
        .unwrap();
    assert!(outcome.verdict.is_admitted());
    let idx = outcome.stream_index.unwrap();

    // The spliced stream is live: feed it and the original block both run
    // to completion.
    let (fin, _fout) = outcome.fifos.unwrap();
    for k in 0..8 {
        let now = built.system.cycle();
        built.system.fifos[fin.0].try_push((k as f64, 0.0), now);
    }
    built.system.run(200_000);
    let gw = &built.system.gateways[gateways[0]];
    assert!(gw.stream(0).blocks_done >= 1, "original block completed");
    assert!(
        gw.stream(idx).blocks_done >= 1,
        "spliced stream ran a block"
    );
}
