//! Integration tests for the `streamgate-analyze` exit-code contract and
//! the `--delta` incremental-admission mode.
//!
//! The contract (documented in the binary's `--help`): exit 0 when the
//! deployment is accepted — Warnings and Infos alone never fail a run —
//! and exit 2 when it is rejected or the invocation itself is unusable.
//! Exit 1 is reserved for crashes, so CI can distinguish "analyzer said
//! no" from "analyzer broke".

use std::process::Command;

fn analyze(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_streamgate-analyze"))
        .args(args)
        .output()
        .expect("spawn streamgate-analyze")
}

#[test]
fn accepted_deployment_exits_zero() {
    let out = analyze(&["pal2"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("verdict: ACCEPTED"), "{text}");
}

#[test]
fn warning_only_deployment_exits_zero() {
    // fig6 with the check-for-space admission test disabled but buffers
    // sized carries an A5 Warning and no Error: warnings must not fail
    // the run.
    let mut spec = streamgate_analysis::DeploySpec::fig6();
    spec.check_for_space = false;
    let report = streamgate_analysis::analyze(&spec);
    assert!(report.is_accepted(), "{}", report.render_text());
    assert!(
        report
            .with_severity(streamgate_analysis::Severity::Warning)
            .count()
            > 0,
        "fixture must carry a warning:\n{}",
        report.render_text()
    );

    let dir = std::env::temp_dir().join("streamgate-analyze-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("warn-only.json");
    std::fs::write(&file, spec.to_json_text()).unwrap();

    let out = analyze(&["--spec", file.to_str().unwrap()]);
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("warning"), "expected warnings in:\n{text}");
    assert!(text.contains("verdict: ACCEPTED"), "{text}");
    assert_eq!(out.status.code(), Some(0), "{text}");
}

#[test]
fn rejected_deployment_exits_two() {
    let out = analyze(&["fig9-broken"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("verdict: REJECTED"), "{text}");
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(analyze(&["--spec"]).status.code(), Some(2));
    assert_eq!(analyze(&["no-such-preset"]).status.code(), Some(2));
    assert_eq!(analyze(&["--bogus-flag"]).status.code(), Some(2));
    assert_eq!(
        analyze(&["--delta", "/nonexistent/deltas.json", "pal2"])
            .status
            .code(),
        Some(2)
    );
}

#[test]
fn delta_mode_replays_churn_and_reports_final_state() {
    let dir = std::env::temp_dir().join("streamgate-analyze-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let script = dir.join("deltas.json");
    let timing = dir.join("timing.json");
    std::fs::write(
        &script,
        r#"{"deltas": [
            {"op": "add", "gateway": 1, "stream": {"name": "probe", "mu": [1, 1000000],
             "eta_in": 8, "eta_out": 8, "reconfig": 20,
             "input_capacity": 64, "output_capacity": 64}},
            {"op": "add", "gateway": 1, "stream": {"name": "hog", "mu": [1, 2],
             "eta_in": 8, "eta_out": 8, "reconfig": 20,
             "input_capacity": 64, "output_capacity": 64}},
            {"op": "remove", "gateway": 1, "stream": "probe"}
        ]}"#,
    )
    .unwrap();

    let out = analyze(&[
        "--delta",
        script.to_str().unwrap(),
        "--timing",
        timing.to_str().unwrap(),
        "pal2",
    ]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("delta 0: add probe @ gateway 1 -> admit"),
        "{text}"
    );
    assert!(
        text.contains("delta 1: add hog @ gateway 1 -> reject"),
        "{text}"
    );
    assert!(
        text.contains("delta 2: remove probe @ gateway 1 -> admit"),
        "{text}"
    );
    // Final committed deployment is the baseline again: accepted, exit 0
    // even though one request along the way was rejected.
    assert!(text.contains("verdict: ACCEPTED"), "{text}");
    assert_eq!(out.status.code(), Some(0), "{text}");

    let timing_text = std::fs::read_to_string(&timing).unwrap();
    assert!(timing_text.contains("\"incremental_ns\""), "{timing_text}");
    assert!(timing_text.contains("\"full_ns\""), "{timing_text}");
    assert!(timing_text.contains("\"speedup\""), "{timing_text}");
}

#[test]
fn postmortem_mode_renders_dump_against_spec_bounds() {
    // Produce a real flight-recorder dump: the Fig. 9 wedge observed with
    // the recorder only (full tracing off), monitor armed post-hoc.
    let spec = streamgate_analysis::DeploySpec::fig9(false);
    let report = streamgate_analysis::analyze(&spec);
    let mut b = spec.build_platform();
    b.system.enable_flight_recorder(1024);
    for (i, s) in spec.streams.iter().enumerate() {
        for k in 0..s.input_capacity {
            if !b.push_input(i, (k as f64, 0.5)) {
                break;
            }
        }
    }
    b.system.run(2_000);
    let mut monitor = streamgate_analysis::monitor_for(&spec, &report, &b.system);
    assert!(monitor.poll(&b.system.tracer) > 0, "wedge must trip");
    let pm = streamgate_core::collect_postmortem(&b.system, &monitor, &spec.name);

    let dir = std::env::temp_dir().join("streamgate-analyze-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("postmortem.json");
    std::fs::write(&file, pm.to_json_text()).unwrap();

    // Rendering a dump that documents a failure is itself a success (exit
    // 0); the explanation must name the violation and the blame component
    // that exceeded its predicted ceiling.
    let out = analyze(&["--postmortem", file.to_str().unwrap(), "fig9-broken"]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "{text}");
    assert!(text.contains("postmortem of deployment"), "{text}");
    assert!(text.contains("head-of-line"), "{text}");
    assert!(text.contains("EXCEEDED"), "{text}");

    // An unreadable dump is a usage error.
    assert_eq!(
        analyze(&["--postmortem", "/nonexistent/pm.json", "fig9-broken"])
            .status
            .code(),
        Some(2)
    );
}

#[test]
fn delta_mode_exits_two_when_final_state_rejected() {
    let dir = std::env::temp_dir().join("streamgate-analyze-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let script = dir.join("bad-script.json");
    // A malformed script (unknown stream) is a usage error.
    std::fs::write(
        &script,
        r#"{"deltas": [{"op": "remove", "gateway": 1, "stream": "nope"}]}"#,
    )
    .unwrap();
    let out = analyze(&["--delta", script.to_str().unwrap(), "pal2"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
