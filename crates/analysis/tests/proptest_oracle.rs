//! Property test using the static analyzer as a *validity oracle* over
//! unconstrained random deployments.
//!
//! Unlike `differential.rs` (whose generator is engineered to produce
//! accepted configurations), this strategy draws capacities and rates
//! freely — many drawn deployments are genuinely broken. The analyzer
//! triages them: whatever it ACCEPTS must hold up in simulation (progress,
//! τ̂, engine agreement); whatever it rejects is skipped, exactly how the
//! randomized platform tests use it as a pre-filter.

mod common;

use common::{clean_cycles, fast_options, run_saturated, tau_margin};
use proptest::prelude::*;
use streamgate_analysis::{analyze_with, ChainStage, DeploySpec, StreamDeploy};
use streamgate_core::validate_tau_bound;
use streamgate_ilp::Rational;
use streamgate_platform::StepMode;

#[derive(Clone, Debug)]
struct RawDeploy {
    chain_rhos: Vec<u64>,
    epsilon: u64,
    delta: u64,
    ni_depth: u32,
    check_for_space: bool,
    etas: Vec<u64>,
    reconfig: u64,
    in_cap_factor: u64,  // input capacity = factor × η (0 → η − 1: broken)
    out_cap_factor: u64, // likewise for the output side
    mu_denom_factor: u64,
}

fn spec_of(raw: &RawDeploy) -> DeploySpec {
    let c0 = raw
        .chain_rhos
        .iter()
        .copied()
        .max()
        .unwrap()
        .max(raw.epsilon)
        .max(raw.delta);
    let gamma: u64 = raw
        .etas
        .iter()
        .map(|&eta| raw.reconfig + (eta + 2) * c0)
        .sum();
    DeploySpec {
        name: "oracle".into(),
        chain: raw
            .chain_rhos
            .iter()
            .enumerate()
            .map(|(i, &rho)| ChainStage {
                name: format!("A{i}"),
                rho,
            })
            .collect(),
        epsilon: raw.epsilon,
        delta: raw.delta,
        ni_depth: raw.ni_depth,
        check_for_space: raw.check_for_space,
        streams: raw
            .etas
            .iter()
            .enumerate()
            .map(|(i, &eta)| StreamDeploy {
                name: format!("s{i}"),
                // μ = η / (factor·γ/4): factor ≤ 4 demands more than a round
                // can deliver (infeasible), larger factors are feasible.
                mu: Rational::new(4 * eta as i128, (raw.mu_denom_factor * gamma) as i128),
                eta_in: eta,
                eta_out: eta,
                reconfig: raw.reconfig,
                input_capacity: if raw.in_cap_factor == 0 {
                    eta - 1
                } else {
                    raw.in_cap_factor * eta
                },
                output_capacity: if raw.out_cap_factor == 0 {
                    eta - 1
                } else {
                    raw.out_cap_factor * eta
                },
                max_latency: None,
            })
            .collect(),
        processors: vec![],
        gateways: vec![],
        config_bus_period: None,
        station_map: None,
        modes: vec![],
    }
}

fn raw_strategy() -> impl Strategy<Value = RawDeploy> {
    (
        (proptest::collection::vec(1u64..6, 1..4), 1u64..8, 1u64..3),
        (1u32..4, 0u64..2, proptest::collection::vec(4u64..20, 1..4)),
        (0u64..80, 0u64..8, 0u64..10, 2u64..16),
    )
        .prop_map(
            |(
                (chain_rhos, epsilon, delta),
                (ni_depth, check, etas),
                (reconfig, in_cap_factor, out_cap_factor, mu_denom_factor),
            )| RawDeploy {
                chain_rhos,
                epsilon,
                delta,
                ni_depth,
                check_for_space: check == 1,
                etas,
                reconfig,
                in_cap_factor,
                out_cap_factor,
                mu_denom_factor,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn analyzer_accepted_deployments_survive_simulation(raw in raw_strategy()) {
        let spec = spec_of(&raw);
        let report = analyze_with(&spec, &fast_options());
        prop_assume!(report.is_accepted());

        // Small capacities bound the number of blocks a saturated run can
        // complete; require progress proportional to what fits.
        let min_blocks = spec
            .streams
            .iter()
            .map(|s| (s.input_capacity / s.eta_in).min(s.output_capacity / s.eta_out))
            .min()
            .unwrap()
            .min(3);
        let cycles = clean_cycles(&spec);
        let prob = spec.sharing_problem();
        let etas = spec.etas();
        let mut per_engine = Vec::new();
        for mode in [StepMode::Exhaustive, StepMode::EventDriven] {
            let b = run_saturated(&spec, mode, cycles);
            let blocks: Vec<u64> =
                (0..spec.streams.len()).map(|s| b.blocks_done(s)).collect();
            for (s, &n) in blocks.iter().enumerate() {
                prop_assert!(
                    n >= min_blocks,
                    "accepted, but stream {} did {} < {} blocks ({:?})\n{}",
                    s, n, min_blocks, mode, report.render_text()
                );
            }
            for v in validate_tau_bound(&prob, &etas, &b.system, b.gateway, tau_margin(&spec)) {
                prop_assert!(
                    v.ok,
                    "accepted, but stream {} τ {} > τ̂ {} (+{}) ({:?})\n{}",
                    v.stream, v.measured_max, v.tau_hat, v.margin, mode, report.render_text()
                );
            }
            per_engine.push(blocks);
        }
        prop_assert_eq!(&per_engine[0], &per_engine[1], "engines disagree");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whole-system variant of the oracle: a seeded multi-gateway topology
    /// with one stream's rate scaled by a free factor — ×1 keeps the
    /// generator's half-limit placement, larger factors push past the
    /// system-scope Eq. 5 / ring-capacity limits and get rejected. Whatever
    /// the analyzer accepts must survive saturated simulation on both
    /// engines, pairs progressing and engines agreeing.
    #[test]
    fn analyzer_accepted_multi_deployments_survive_simulation(
        seed in 1u64..u64::MAX,
        victim_pick in 0usize..16,
        mu_scale in 1i128..12,
    ) {
        let mut rng = common::Rng::new(seed);
        let mut spec = common::random_multi_spec(&mut rng, 0);
        let g = victim_pick % spec.gateways.len();
        let s = victim_pick % spec.gateways[g].streams.len();
        let mu = spec.gateways[g].streams[s].mu;
        spec.gateways[g].streams[s].mu =
            Rational::new(mu.numer() * mu_scale, mu.denom());
        // The generator's latency budgets assume the original fill time;
        // drop the scaled stream's budget so A10 reflects the new rate.
        spec.gateways[g].streams[s].max_latency = None;

        let report = analyze_with(&spec, &fast_options());
        prop_assume!(report.is_accepted());

        let cycles = common::multi_clean_cycles(&spec);
        let mut per_engine = Vec::new();
        for mode in [StepMode::Exhaustive, StepMode::EventDriven] {
            let b = common::run_saturated_multi(&spec, mode, cycles);
            let mut blocks = Vec::new();
            for (g, gw) in spec.gateways.iter().enumerate() {
                for s in 0..gw.streams.len() {
                    let n = b.system.gateways[b.gateways[g]].stream(s).blocks_done;
                    prop_assert!(
                        n >= 3,
                        "accepted, but {}:{} did {} blocks ({:?})\n{}",
                        gw.name, gw.streams[s].name, n, mode, report.render_text()
                    );
                    blocks.push(n);
                }
            }
            per_engine.push(blocks);
        }
        prop_assert_eq!(&per_engine[0], &per_engine[1], "engines disagree");
    }
}
