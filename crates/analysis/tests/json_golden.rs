//! Golden-file tests for the machine-readable `--json` report: the exact
//! bytes `streamgate-analyze --json` prints for one *accepted* and one
//! *rejected* multi-gateway deployment. The JSON is a stable interface
//! (CI and downstream tooling parse it), so any diff here is a deliberate
//! format change: rerun with `GOLDEN_UPDATE=1` to re-record, and review
//! the diff like an API change.

use std::path::PathBuf;
use streamgate_analysis::{analyze, DeploySpec};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e} (run with GOLDEN_UPDATE=1)",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "JSON report for {name} diverged from the golden file — if the \
         change is intentional, re-record with GOLDEN_UPDATE=1"
    );
}

/// The rejected counterpart: pal2 with gw-back's configuration slot moved
/// onto gw-front's (A9 Error) and ch1-front's latency budget cut below the
/// idle-chain floor (A10 Error).
fn pal2_broken() -> DeploySpec {
    let mut spec = DeploySpec::pal2();
    spec.name = "pal2-broken".into();
    spec.gateways[1].config_slot = Some((100, 200));
    spec.gateways[0].streams[0].max_latency = Some(30_000);
    spec
}

#[test]
fn pal2_accepted_json_matches_golden() {
    let report = analyze(&DeploySpec::pal2());
    assert!(report.is_accepted(), "{}", report.render_text());
    check_golden("pal2_accepted.json", &report.to_json_text());
}

#[test]
fn pal2_broken_rejected_json_matches_golden() {
    let report = analyze(&pal2_broken());
    assert!(!report.is_accepted(), "{}", report.render_text());
    check_golden("pal2_rejected.json", &report.to_json_text());
}

/// The golden inputs must themselves round-trip through the spec JSON —
/// the `--spec FILE` path of the CLI reads exactly what `to_json_text`
/// writes, multi-gateway keys included.
#[test]
fn golden_specs_roundtrip_through_spec_json() {
    for spec in [DeploySpec::pal2(), pal2_broken()] {
        let text = spec.to_json_text();
        let back = DeploySpec::from_json_text(&text).expect("reparse");
        assert_eq!(back.to_json_text(), text);
    }
}
