//! Differential testing: the static analyzer's verdicts cross-validated
//! against BOTH cycle-level simulation engines.
//!
//! The soundness contract under test:
//!
//! * **accepted** (no Error diagnostics) random deployments, simulated in
//!   the saturated regime the analysis describes, meet their τ̂ (Eq. 2) and
//!   γ (Eq. 4) bounds and make progress on every stream — on the exhaustive
//!   AND the event-driven engine, which must also agree with each other;
//! * **Error-rejected** deployments demonstrably fail in simulation, in the
//!   way the rule predicts: deadlock (A1/A2), throughput miss (A3), or a
//!   wedged chain with head-of-line blocking (A5).
//!
//! 460 random topologies total: 120 clean single-gateway + 4 × 30
//! fault-injected single-gateway, plus 140 clean multi-gateway + 2 × 40
//! fault-injected multi-gateway whole-system deployments.

mod common;

use common::{
    clean_cycles, fast_options, multi_clean_cycles, multi_tau_margin, random_clean_spec,
    random_multi_spec, round_margin, run_saturated, run_saturated_multi, tau_margin, Rng,
};
use streamgate_analysis::{
    analyze_profiled, analyze_with, check_blame_conformance, monitor_for, RuleId, Severity,
};
use streamgate_core::{
    collect_blame, collect_profile, max_round_time, system_metrics, validate_tau_bound,
};
use streamgate_platform::StepMode;

const ENGINES: [StepMode; 2] = [StepMode::Exhaustive, StepMode::EventDriven];

#[test]
fn accepted_topologies_meet_bounds_on_both_engines() {
    let mut rng = Rng::new(0xD1FF_0001);
    for case in 0..120 {
        let spec = random_clean_spec(&mut rng, case);
        let report = analyze_with(&spec, &fast_options());
        assert!(
            report.is_accepted(),
            "clean generator produced a rejected spec (case {case}):\n{}",
            report.render_text()
        );

        let prob = spec.sharing_problem();
        let etas = spec.etas();
        let cycles = clean_cycles(&spec);
        let mut blocks_by_engine = Vec::new();
        let mut profiles = Vec::new();
        let mut blames = Vec::new();
        let mut traces = Vec::new();
        for mode in ENGINES {
            let mut b = run_saturated(&spec, mode, cycles);
            // Progress: at least 3 of the 6 prefilled blocks per stream.
            let blocks: Vec<u64> = (0..spec.streams.len()).map(|s| b.blocks_done(s)).collect();
            for (s, &n) in blocks.iter().enumerate() {
                assert!(
                    n >= 3,
                    "case {case} ({mode:?}): accepted but stream {s} completed only \
                     {n} blocks in {cycles} cycles\n{}",
                    report.render_text()
                );
            }
            // Eq. 2: measured block times within τ̂ + ring margin.
            for v in validate_tau_bound(&prob, &etas, &b.system, b.gateway, tau_margin(&spec)) {
                assert!(
                    v.ok,
                    "case {case} ({mode:?}): stream {} measured τ {} exceeds τ̂ {} (+{})\n{}",
                    v.stream,
                    v.measured_max,
                    v.tau_hat,
                    v.margin,
                    report.render_text()
                );
            }
            // Eq. 4: measured rounds within γ + margin.
            let gamma = report.gamma;
            let metrics = system_metrics(&b.system, b.gateway);
            if let Some(round) = max_round_time(&metrics) {
                assert!(
                    round <= gamma + round_margin(&spec),
                    "case {case} ({mode:?}): round {round} exceeds γ {gamma} (+{})\n{}",
                    round_margin(&spec),
                    report.render_text()
                );
            }
            blocks_by_engine.push(blocks);

            // Measured-profile feedback: every empirical per-hop arrival
            // curve must be dominated by the analyzer's predicted envelope
            // (an escape is an A7 Error, flipping the verdict).
            let profile = collect_profile(&mut b.system, &spec.name);
            let report_p = analyze_profiled(&spec, &fast_options(), Some(&profile));
            assert!(
                report_p.is_accepted(),
                "case {case} ({mode:?}): measured profile rejected by the \
                 analyzer (predicted curve fails to dominate):\n{}",
                report_p.render_text()
            );

            // Online monitoring: the Eq. 2 / Eq. 3-4 / buffer / Fig. 9
            // checks, armed with the analyzer's bounds, must stay silent
            // over the whole trace of a clean accepted run.
            let mut monitor = monitor_for(&spec, &report, &b.system);
            monitor.poll(&b.system.tracer);
            assert!(
                monitor.is_clean(),
                "case {case} ({mode:?}): online monitor flagged violations \
                 on an accepted clean run: {:?}",
                monitor.violations()
            );
            profiles.push(profile);

            // Causal attribution: every completed block's τ decomposes
            // exactly (sum-to-τ is asserted inside collect_blame), and
            // each measured component stays under its analytic ceiling —
            // strictly stronger than the aggregate τ ≤ τ̂ check above.
            let blame = collect_blame(&mut b.system, &spec.name);
            let failures = check_blame_conformance(&spec, &report, &blame);
            assert!(
                failures.is_empty(),
                "case {case} ({mode:?}): componentwise conformance failed:\n{}",
                failures.join("\n")
            );
            blames.push(blame);

            // Keep the full structured event stream for cross-engine
            // comparison (flushing open stall windows first so both
            // engines are finalized identically).
            b.system.finish_trace();
            traces.push(b.system.tracer.events().to_vec());
        }
        assert_eq!(
            blocks_by_engine[0], blocks_by_engine[1],
            "case {case}: engines disagree on completed blocks"
        );
        // Blame reports must be bit-identical between engines (only the
        // mode tag may differ), down to the serialized JSON.
        let mut bl_ev = blames.pop().unwrap();
        let bl_ex = blames.pop().unwrap();
        bl_ev.mode = bl_ex.mode.clone();
        assert_eq!(
            bl_ex.to_json_text(),
            bl_ev.to_json_text(),
            "case {case}: engines disagree on the blame report"
        );
        // The two engines must have produced bit-identical measurements;
        // only the `mode` tag may differ.
        let mut p_ev = profiles.pop().unwrap();
        let p_ex = profiles.pop().unwrap();
        p_ev.mode = p_ex.mode.clone();
        assert_eq!(
            p_ex, p_ev,
            "case {case}: engines disagree on the measured profile"
        );
        // ... and bit-identical trace-event streams, event by event.
        let t_ev = traces.pop().unwrap();
        let t_ex = traces.pop().unwrap();
        if let Some(d) = t_ex.iter().zip(t_ev.iter()).position(|(x, y)| x != y) {
            panic!(
                "case {case}: trace streams diverge at event {d}: \
                 exhaustive {:?} vs event {:?}",
                t_ex[d], t_ev[d]
            );
        }
        assert_eq!(
            t_ex.len(),
            t_ev.len(),
            "case {case}: engines disagree on trace event count"
        );
    }
}

#[test]
fn undersized_input_rejections_deadlock_in_simulation() {
    let mut rng = Rng::new(0xD1FF_0002);
    for case in 0..30 {
        let mut spec = random_clean_spec(&mut rng, case);
        let victim = (rng.next() % spec.streams.len() as u64) as usize;
        spec.streams[victim].input_capacity = spec.streams[victim].eta_in - 1;
        let report = analyze_with(&spec, &fast_options());
        assert!(
            report.has(RuleId::A2BufferCapacity, Severity::Error),
            "case {case}: expected A2 Error\n{}",
            report.render_text()
        );
        assert!(!report.is_accepted());

        let cycles = clean_cycles(&spec);
        for mode in ENGINES {
            let b = run_saturated(&spec, mode, cycles);
            assert_eq!(
                b.blocks_done(victim),
                0,
                "case {case} ({mode:?}): a full block never fits stream {victim}'s \
                 input FIFO, yet it completed blocks"
            );
        }
    }
}

#[test]
fn undersized_output_rejections_deadlock_in_simulation() {
    let mut rng = Rng::new(0xD1FF_0003);
    for case in 0..30 {
        let mut spec = random_clean_spec(&mut rng, case);
        let victim = (rng.next() % spec.streams.len() as u64) as usize;
        spec.streams[victim].output_capacity = spec.streams[victim].eta_out - 1;
        let report = analyze_with(&spec, &fast_options());
        assert!(
            report.has(RuleId::A2BufferCapacity, Severity::Error),
            "case {case}: expected A2 Error\n{}",
            report.render_text()
        );

        let cycles = clean_cycles(&spec);
        for mode in ENGINES {
            let b = run_saturated(&spec, mode, cycles);
            assert_eq!(
                b.blocks_done(victim),
                0,
                "case {case} ({mode:?}): check-for-space can never admit stream \
                 {victim}, yet it completed blocks"
            );
        }
    }
}

#[test]
fn infeasible_throughput_rejections_miss_rate_in_simulation() {
    let mut rng = Rng::new(0xD1FF_0004);
    for case in 0..30 {
        let mut spec = random_clean_spec(&mut rng, case);
        // Demand 1.5× the rate a true lower bound on the round time allows:
        // the entry gateway serialises blocks, each costing at least
        // R_i + (η_i − 1)·ε cycles, so no schedule can serve stream 0
        // faster than η_0 per r_floor cycles.
        let r_floor: u64 = spec
            .streams
            .iter()
            .map(|s| s.reconfig + (s.eta_in - 1) * spec.epsilon)
            .sum();
        let eta0 = spec.streams[0].eta_in;
        spec.streams[0].mu =
            streamgate_ilp::Rational::new(3 * eta0 as i128, 2 * r_floor.max(1) as i128);
        let report = analyze_with(&spec, &fast_options());
        assert!(
            report.has(RuleId::A3Throughput, Severity::Error),
            "case {case}: expected A3 Error (mu = {}, r_floor = {r_floor})\n{}",
            spec.streams[0].mu,
            report.render_text()
        );

        let mu = spec.streams[0].mu;
        let cycles = clean_cycles(&spec);
        for mode in ENGINES {
            let b = run_saturated(&spec, mode, cycles);
            let metrics = system_metrics(&b.system, b.gateway);
            let starts: Vec<u64> = metrics
                .blocks
                .iter()
                .filter(|blk| blk.stream == 0)
                .map(|blk| blk.start)
                .collect();
            if starts.len() < 2 {
                // Not even two blocks in a generous budget — an even more
                // decisive throughput failure.
                continue;
            }
            let min_gap = starts.windows(2).map(|w| w[1] - w[0]).min().unwrap();
            // Sustained rate η/min_gap must fall short of μ:
            // η · denom(μ) < min_gap · numer(μ).
            assert!(
                (eta0 as i128) * mu.denom() < (min_gap as i128) * mu.numer(),
                "case {case} ({mode:?}): demanded μ = {mu} met by gap {min_gap} \
                 (η = {eta0}) — analyzer rejection was wrong"
            );
        }
    }
}

#[test]
fn missing_space_check_rejections_wedge_in_simulation() {
    let mut rng = Rng::new(0xD1FF_0005);
    for case in 0..30 {
        let mut spec = random_clean_spec(&mut rng, case);
        spec.check_for_space = false;
        spec.streams[0].output_capacity = spec.streams[0].eta_out - 1;
        let report = analyze_with(&spec, &fast_options());
        assert!(
            report.has(RuleId::A5SpaceCheck, Severity::Error),
            "case {case}: expected A5 Error\n{}",
            report.render_text()
        );

        let cycles = clean_cycles(&spec);
        for mode in ENGINES {
            let b = run_saturated(&spec, mode, cycles);
            // The admitted block of stream 0 can never drain: no completion.
            assert_eq!(
                b.blocks_done(0),
                0,
                "case {case} ({mode:?}): wedged stream completed a block"
            );
            // Head-of-line blocking: every OTHER stream is starved far below
            // its six available blocks (the shared chain is wedged from the
            // first round on).
            for s in 1..spec.streams.len() {
                assert!(
                    b.blocks_done(s) <= 2,
                    "case {case} ({mode:?}): stream {s} completed {} blocks \
                     despite the wedged chain — no head-of-line blocking?",
                    b.blocks_done(s)
                );
            }
        }
    }
}

/// Multi-gateway soundness, clean side: 140 random whole-system topologies
/// (2–3 pairs, mixed owned/shared chains, config-bus slots, latency
/// budgets on half the streams) must be accepted — and then every pair on
/// both engines makes progress, meets Eq. 2 per block, and keeps its
/// measured rounds within the *system* round bound γ_g (which charges
/// cross-pair claims on shared chains).
#[test]
fn accepted_multi_gateway_topologies_meet_bounds_on_both_engines() {
    let mut rng = Rng::new(0xD1FF_0006);
    for case in 0..140 {
        let spec = random_multi_spec(&mut rng, case);
        let report = analyze_with(&spec, &fast_options());
        assert!(
            report.is_accepted(),
            "clean multi generator produced a rejected spec (case {case}):\n{}",
            report.render_text()
        );

        let views = spec.gateway_views();
        let cycles = multi_clean_cycles(&spec);
        let mut blocks_by_engine = Vec::new();
        let mut profiles = Vec::new();
        let mut blames = Vec::new();
        let mut traces = Vec::new();
        for mode in ENGINES {
            let mut b = run_saturated_multi(&spec, mode, cycles);
            let mut blocks = Vec::new();
            let mut flat = 0;
            for v in &views {
                let gw = b.gateways[v.index];
                for s in 0..v.streams.len() {
                    let n = b.system.gateways[gw].stream(s).blocks_done;
                    assert!(
                        n >= 3,
                        "case {case} ({mode:?}): accepted but {}:{} completed only \
                         {n} blocks in {cycles} cycles\n{}",
                        v.name,
                        v.streams[s].name,
                        report.render_text()
                    );
                    blocks.push(n);
                }
                // Eq. 2 per pair: measured block times within τ̂ + margin.
                let prob = v.sharing_problem();
                let etas = v.etas();
                let margin = multi_tau_margin(&spec, v.chain.len() as u64, v.c0());
                for val in validate_tau_bound(&prob, &etas, &b.system, gw, margin) {
                    assert!(
                        val.ok,
                        "case {case} ({mode:?}): {} stream {} measured τ {} exceeds \
                         τ̂ {} (+{})\n{}",
                        v.name,
                        val.stream,
                        val.measured_max,
                        val.tau_hat,
                        val.margin,
                        report.render_text()
                    );
                }
                // Eq. 3–4 at system scope: measured rounds within γ_g. The
                // report's bounds carry γ_g = τ̂ + Ω̂ per stream.
                let gamma_g = report.bounds[flat].tau_hat + report.bounds[flat].omega_hat;
                let metrics = system_metrics(&b.system, gw);
                if let Some(round) = max_round_time(&metrics) {
                    let margin = margin * v.streams.len() as u64 + 16;
                    assert!(
                        round <= gamma_g + margin,
                        "case {case} ({mode:?}): {} round {round} exceeds system \
                         γ_g {gamma_g} (+{margin})\n{}",
                        v.name,
                        report.render_text()
                    );
                }
                flat += v.streams.len();
            }
            blocks_by_engine.push(blocks);

            // Measured-profile feedback: every empirical per-hop arrival
            // curve must be dominated by the analyzer's predicted envelope
            // (an escape is an A7 Error, flipping the verdict).
            let profile = collect_profile(&mut b.system, &spec.name);
            let report_p = analyze_profiled(&spec, &fast_options(), Some(&profile));
            assert!(
                report_p.is_accepted(),
                "case {case} ({mode:?}): measured profile rejected by the \
                 analyzer (predicted curve fails to dominate):\n{}",
                report_p.render_text()
            );

            // Online monitoring: the Eq. 2 / Eq. 3-4 / buffer / Fig. 9
            // checks, armed with the analyzer's bounds, must stay silent
            // over the whole trace of a clean accepted run.
            let mut monitor = monitor_for(&spec, &report, &b.system);
            monitor.poll(&b.system.tracer);
            assert!(
                monitor.is_clean(),
                "case {case} ({mode:?}): online monitor flagged violations \
                 on an accepted clean run: {:?}",
                monitor.violations()
            );
            profiles.push(profile);

            // Causal attribution: every completed block's τ decomposes
            // exactly (sum-to-τ is asserted inside collect_blame), and
            // each measured component stays under its analytic ceiling —
            // strictly stronger than the aggregate τ ≤ τ̂ check above.
            let blame = collect_blame(&mut b.system, &spec.name);
            let failures = check_blame_conformance(&spec, &report, &blame);
            assert!(
                failures.is_empty(),
                "case {case} ({mode:?}): componentwise conformance failed:\n{}",
                failures.join("\n")
            );
            blames.push(blame);

            // Keep the full structured event stream for cross-engine
            // comparison (flushing open stall windows first so both
            // engines are finalized identically).
            b.system.finish_trace();
            traces.push(b.system.tracer.events().to_vec());
        }
        assert_eq!(
            blocks_by_engine[0], blocks_by_engine[1],
            "case {case}: engines disagree on completed blocks"
        );
        // Blame reports must be bit-identical between engines (only the
        // mode tag may differ), down to the serialized JSON.
        let mut bl_ev = blames.pop().unwrap();
        let bl_ex = blames.pop().unwrap();
        bl_ev.mode = bl_ex.mode.clone();
        assert_eq!(
            bl_ex.to_json_text(),
            bl_ev.to_json_text(),
            "case {case}: engines disagree on the blame report"
        );
        // The two engines must have produced bit-identical measurements;
        // only the `mode` tag may differ.
        let mut p_ev = profiles.pop().unwrap();
        let p_ex = profiles.pop().unwrap();
        p_ev.mode = p_ex.mode.clone();
        assert_eq!(
            p_ex, p_ev,
            "case {case}: engines disagree on the measured profile"
        );
        // ... and bit-identical trace-event streams, event by event.
        let t_ev = traces.pop().unwrap();
        let t_ex = traces.pop().unwrap();
        if let Some(d) = t_ex.iter().zip(t_ev.iter()).position(|(x, y)| x != y) {
            panic!(
                "case {case}: trace streams diverge at event {d}: \
                 exhaustive {:?} vs event {:?}",
                t_ex[d], t_ev[d]
            );
        }
        assert_eq!(
            t_ex.len(),
            t_ev.len(),
            "case {case}: engines disagree on trace event count"
        );
    }
}

/// Multi-gateway fault injection: an undersized input C-FIFO on one pair
/// is rejected (A2 at that pair's view) and that stream never completes a
/// block on either engine — while the *other pairs* keep streaming.
#[test]
fn multi_gateway_undersized_input_rejections_deadlock_in_simulation() {
    let mut rng = Rng::new(0xD1FF_0007);
    for case in 0..40 {
        let mut spec = random_multi_spec(&mut rng, case);
        let vg = (rng.next() % spec.gateways.len() as u64) as usize;
        let vs = (rng.next() % spec.gateways[vg].streams.len() as u64) as usize;
        let victim = &mut spec.gateways[vg].streams[vs];
        victim.input_capacity = victim.eta_in - 1;
        let report = analyze_with(&spec, &fast_options());
        assert!(
            report.has(RuleId::A2BufferCapacity, Severity::Error),
            "case {case}: expected A2 Error\n{}",
            report.render_text()
        );
        assert!(!report.is_accepted());

        let cycles = multi_clean_cycles(&spec);
        for mode in ENGINES {
            let b = run_saturated_multi(&spec, mode, cycles);
            assert_eq!(
                b.system.gateways[b.gateways[vg]].stream(vs).blocks_done,
                0,
                "case {case} ({mode:?}): a full block never fits the victim's \
                 input FIFO, yet it completed blocks"
            );
            for (g, gw) in spec.gateways.iter().enumerate() {
                if g == vg {
                    continue;
                }
                for s in 0..gw.streams.len() {
                    assert!(
                        b.system.gateways[b.gateways[g]].stream(s).blocks_done >= 3,
                        "case {case} ({mode:?}): healthy pair {} starved by the \
                         victim's local fault",
                        gw.name
                    );
                }
            }
        }
    }
}

/// Multi-gateway fault injection, system-scope rule: force every pair onto
/// ONE shared chain and scale rates to the *pair-local* Eq. 5 limit — each
/// pair in isolation is feasible, but the chain as a whole is claimed more
/// than 100% of the time. Only A8 can reject this; the pinned simulation
/// counterpart lives in `negative_paths.rs`.
#[test]
fn multi_gateway_shared_overcommit_is_rejected_by_a8() {
    let mut rng = Rng::new(0xD1FF_0008);
    for case in 0..40 {
        let mut spec = random_multi_spec(&mut rng, case);
        // Everyone shares gateway 0's chain.
        for g in 1..spec.gateways.len() {
            spec.gateways[g].chain = vec![];
            spec.gateways[g].shares_chain_with = Some(0);
        }
        // Rate each stream at ~90% of its PAIR-LOCAL η/γ limit: locally
        // clean (A3 passes), globally over-committed (Σ μ·τ̂/η > 1 as soon
        // as two or more pairs claim one chain at near-full local rate).
        let c0 = {
            let rho = spec.gateways[0].chain.iter().map(|s| s.rho).max().unwrap();
            spec.epsilon.max(rho).max(spec.delta)
        };
        for gw in spec.gateways.iter_mut() {
            let gamma_local: u64 = gw
                .streams
                .iter()
                .map(|s| s.reconfig + (s.eta_in + 2) * c0)
                .sum();
            for s in gw.streams.iter_mut() {
                s.mu =
                    streamgate_ilp::Rational::new(9 * s.eta_in as i128, 10 * gamma_local as i128);
                s.max_latency = None;
            }
        }
        let report = analyze_with(&spec, &fast_options());
        assert!(
            report.has(RuleId::A8SystemRound, Severity::Error),
            "case {case}: expected A8 Error\n{}",
            report.render_text()
        );
        assert!(!report.is_accepted());
        assert!(
            !report.has(RuleId::A3Throughput, Severity::Error),
            "case {case}: the fault must be invisible to the pair-local A3\n{}",
            report.render_text()
        );
    }
}
