//! Differential testing: the static analyzer's verdicts cross-validated
//! against BOTH cycle-level simulation engines.
//!
//! The soundness contract under test:
//!
//! * **accepted** (no Error diagnostics) random deployments, simulated in
//!   the saturated regime the analysis describes, meet their τ̂ (Eq. 2) and
//!   γ (Eq. 4) bounds and make progress on every stream — on the exhaustive
//!   AND the event-driven engine, which must also agree with each other;
//! * **Error-rejected** deployments demonstrably fail in simulation, in the
//!   way the rule predicts: deadlock (A1/A2), throughput miss (A3), or a
//!   wedged chain with head-of-line blocking (A5).
//!
//! 240 random topologies total: 120 clean + 4 × 30 fault-injected.

mod common;

use common::{
    clean_cycles, fast_options, random_clean_spec, round_margin, run_saturated, tau_margin, Rng,
};
use streamgate_analysis::{analyze_with, RuleId, Severity};
use streamgate_core::{max_round_time, system_metrics, validate_tau_bound};
use streamgate_platform::StepMode;

const ENGINES: [StepMode; 2] = [StepMode::Exhaustive, StepMode::EventDriven];

#[test]
fn accepted_topologies_meet_bounds_on_both_engines() {
    let mut rng = Rng::new(0xD1FF_0001);
    for case in 0..120 {
        let spec = random_clean_spec(&mut rng, case);
        let report = analyze_with(&spec, &fast_options());
        assert!(
            report.is_accepted(),
            "clean generator produced a rejected spec (case {case}):\n{}",
            report.render_text()
        );

        let prob = spec.sharing_problem();
        let etas = spec.etas();
        let cycles = clean_cycles(&spec);
        let mut blocks_by_engine = Vec::new();
        for mode in ENGINES {
            let b = run_saturated(&spec, mode, cycles);
            // Progress: at least 3 of the 6 prefilled blocks per stream.
            let blocks: Vec<u64> = (0..spec.streams.len()).map(|s| b.blocks_done(s)).collect();
            for (s, &n) in blocks.iter().enumerate() {
                assert!(
                    n >= 3,
                    "case {case} ({mode:?}): accepted but stream {s} completed only \
                     {n} blocks in {cycles} cycles\n{}",
                    report.render_text()
                );
            }
            // Eq. 2: measured block times within τ̂ + ring margin.
            for v in validate_tau_bound(&prob, &etas, &b.system, b.gateway, tau_margin(&spec)) {
                assert!(
                    v.ok,
                    "case {case} ({mode:?}): stream {} measured τ {} exceeds τ̂ {} (+{})\n{}",
                    v.stream,
                    v.measured_max,
                    v.tau_hat,
                    v.margin,
                    report.render_text()
                );
            }
            // Eq. 4: measured rounds within γ + margin.
            let gamma = report.gamma;
            let metrics = system_metrics(&b.system, b.gateway);
            if let Some(round) = max_round_time(&metrics) {
                assert!(
                    round <= gamma + round_margin(&spec),
                    "case {case} ({mode:?}): round {round} exceeds γ {gamma} (+{})\n{}",
                    round_margin(&spec),
                    report.render_text()
                );
            }
            blocks_by_engine.push(blocks);
        }
        assert_eq!(
            blocks_by_engine[0], blocks_by_engine[1],
            "case {case}: engines disagree on completed blocks"
        );
    }
}

#[test]
fn undersized_input_rejections_deadlock_in_simulation() {
    let mut rng = Rng::new(0xD1FF_0002);
    for case in 0..30 {
        let mut spec = random_clean_spec(&mut rng, case);
        let victim = (rng.next() % spec.streams.len() as u64) as usize;
        spec.streams[victim].input_capacity = spec.streams[victim].eta_in - 1;
        let report = analyze_with(&spec, &fast_options());
        assert!(
            report.has(RuleId::A2BufferCapacity, Severity::Error),
            "case {case}: expected A2 Error\n{}",
            report.render_text()
        );
        assert!(!report.is_accepted());

        let cycles = clean_cycles(&spec);
        for mode in ENGINES {
            let b = run_saturated(&spec, mode, cycles);
            assert_eq!(
                b.blocks_done(victim),
                0,
                "case {case} ({mode:?}): a full block never fits stream {victim}'s \
                 input FIFO, yet it completed blocks"
            );
        }
    }
}

#[test]
fn undersized_output_rejections_deadlock_in_simulation() {
    let mut rng = Rng::new(0xD1FF_0003);
    for case in 0..30 {
        let mut spec = random_clean_spec(&mut rng, case);
        let victim = (rng.next() % spec.streams.len() as u64) as usize;
        spec.streams[victim].output_capacity = spec.streams[victim].eta_out - 1;
        let report = analyze_with(&spec, &fast_options());
        assert!(
            report.has(RuleId::A2BufferCapacity, Severity::Error),
            "case {case}: expected A2 Error\n{}",
            report.render_text()
        );

        let cycles = clean_cycles(&spec);
        for mode in ENGINES {
            let b = run_saturated(&spec, mode, cycles);
            assert_eq!(
                b.blocks_done(victim),
                0,
                "case {case} ({mode:?}): check-for-space can never admit stream \
                 {victim}, yet it completed blocks"
            );
        }
    }
}

#[test]
fn infeasible_throughput_rejections_miss_rate_in_simulation() {
    let mut rng = Rng::new(0xD1FF_0004);
    for case in 0..30 {
        let mut spec = random_clean_spec(&mut rng, case);
        // Demand 1.5× the rate a true lower bound on the round time allows:
        // the entry gateway serialises blocks, each costing at least
        // R_i + (η_i − 1)·ε cycles, so no schedule can serve stream 0
        // faster than η_0 per r_floor cycles.
        let r_floor: u64 = spec
            .streams
            .iter()
            .map(|s| s.reconfig + (s.eta_in - 1) * spec.epsilon)
            .sum();
        let eta0 = spec.streams[0].eta_in;
        spec.streams[0].mu =
            streamgate_ilp::Rational::new(3 * eta0 as i128, 2 * r_floor.max(1) as i128);
        let report = analyze_with(&spec, &fast_options());
        assert!(
            report.has(RuleId::A3Throughput, Severity::Error),
            "case {case}: expected A3 Error (mu = {}, r_floor = {r_floor})\n{}",
            spec.streams[0].mu,
            report.render_text()
        );

        let mu = spec.streams[0].mu;
        let cycles = clean_cycles(&spec);
        for mode in ENGINES {
            let b = run_saturated(&spec, mode, cycles);
            let metrics = system_metrics(&b.system, b.gateway);
            let starts: Vec<u64> = metrics
                .blocks
                .iter()
                .filter(|blk| blk.stream == 0)
                .map(|blk| blk.start)
                .collect();
            if starts.len() < 2 {
                // Not even two blocks in a generous budget — an even more
                // decisive throughput failure.
                continue;
            }
            let min_gap = starts.windows(2).map(|w| w[1] - w[0]).min().unwrap();
            // Sustained rate η/min_gap must fall short of μ:
            // η · denom(μ) < min_gap · numer(μ).
            assert!(
                (eta0 as i128) * mu.denom() < (min_gap as i128) * mu.numer(),
                "case {case} ({mode:?}): demanded μ = {mu} met by gap {min_gap} \
                 (η = {eta0}) — analyzer rejection was wrong"
            );
        }
    }
}

#[test]
fn missing_space_check_rejections_wedge_in_simulation() {
    let mut rng = Rng::new(0xD1FF_0005);
    for case in 0..30 {
        let mut spec = random_clean_spec(&mut rng, case);
        spec.check_for_space = false;
        spec.streams[0].output_capacity = spec.streams[0].eta_out - 1;
        let report = analyze_with(&spec, &fast_options());
        assert!(
            report.has(RuleId::A5SpaceCheck, Severity::Error),
            "case {case}: expected A5 Error\n{}",
            report.render_text()
        );

        let cycles = clean_cycles(&spec);
        for mode in ENGINES {
            let b = run_saturated(&spec, mode, cycles);
            // The admitted block of stream 0 can never drain: no completion.
            assert_eq!(
                b.blocks_done(0),
                0,
                "case {case} ({mode:?}): wedged stream completed a block"
            );
            // Head-of-line blocking: every OTHER stream is starved far below
            // its six available blocks (the shared chain is wedged from the
            // first round on).
            for s in 1..spec.streams.len() {
                assert!(
                    b.blocks_done(s) <= 2,
                    "case {case} ({mode:?}): stream {s} completed {} blocks \
                     despite the wedged chain — no head-of-line blocking?",
                    b.blocks_done(s)
                );
            }
        }
    }
}
