//! Shared machinery for the analysis integration tests: a seeded random
//! deployment generator and a saturated-run simulation harness that mirrors
//! the analyzed spec exactly (same chain, block sizes, capacities and
//! admission policy — `DeploySpec::build_platform` is the single source of
//! wiring truth for both the analyzer's view and the simulated platform).
//!
//! Each integration-test binary compiles this module independently and uses
//! a different subset of it, so the per-binary dead-code lint is off.
#![allow(dead_code)]

use streamgate_analysis::{AnalysisOptions, ChainStage, DeploySpec, StreamDeploy};
use streamgate_core::BuiltSystem;
use streamgate_ilp::Rational;
use streamgate_platform::StepMode;

/// Deterministic xorshift64 RNG (same family the sweep binaries use).
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    pub fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform in `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// Analyzer options for batch runs: the exact minimum-buffer search (a
/// Warnings-only refinement) costs seconds per stream in debug builds, and
/// disabling it never changes the accept/reject verdict.
pub fn fast_options() -> AnalysisOptions {
    AnalysisOptions {
        exact_buffers: false,
    }
}

/// A random deployment engineered to be *accepted*: throughput at half the
/// Eq. 5 limit, capacities with whole-block floors and room for six blocks.
/// Everything else (chain depth, per-stage ρ, ε, δ, R_s, block sizes,
/// stream count) is drawn freely.
pub fn random_clean_spec(rng: &mut Rng, tag: usize) -> DeploySpec {
    let chain_len = rng.range(1, 3);
    let chain: Vec<ChainStage> = (0..chain_len)
        .map(|i| ChainStage {
            name: format!("A{i}"),
            rho: rng.range(1, 6),
        })
        .collect();
    let epsilon = rng.range(1, 8);
    let delta = rng.range(1, 2);
    let ni_depth = rng.range(2, 3) as u32;
    let n_streams = rng.range(1, 3);
    let etas: Vec<u64> = (0..n_streams).map(|_| rng.range(4, 24)).collect();
    let reconfigs: Vec<u64> = (0..n_streams).map(|_| rng.range(0, 100)).collect();

    let rho_a = chain.iter().map(|s| s.rho).max().unwrap();
    let c0 = epsilon.max(rho_a).max(delta);
    let gamma: u64 = etas
        .iter()
        .zip(&reconfigs)
        .map(|(&eta, &r)| r + (eta + 2) * c0)
        .sum();

    let streams = etas
        .iter()
        .zip(&reconfigs)
        .enumerate()
        .map(|(i, (&eta, &r))| StreamDeploy {
            name: format!("s{i}"),
            // Half the Eq. 5 limit η/γ: always feasible, never marginal.
            mu: Rational::new(eta as i128, 2 * gamma as i128),
            eta_in: eta,
            eta_out: eta,
            reconfig: r,
            input_capacity: 6 * eta,
            output_capacity: 8 * eta,
        })
        .collect();

    DeploySpec {
        name: format!("rand-{tag}"),
        chain,
        epsilon,
        delta,
        ni_depth,
        check_for_space: true,
        streams,
        processors: vec![],
    }
}

/// Build the spec's platform, prefill every input FIFO to capacity (the
/// saturated regime the round/τ̂ analysis describes — outputs are never
/// drained, which the generous output capacities absorb), and run it.
pub fn run_saturated(spec: &DeploySpec, mode: StepMode, cycles: u64) -> BuiltSystem {
    let mut b = spec.build_platform();
    b.system.step_mode = mode;
    b.system.enable_tracing(0);
    for (i, s) in spec.streams.iter().enumerate() {
        for k in 0..s.input_capacity {
            if !b.push_input(i, (k as f64, 0.5)) {
                break;
            }
        }
    }
    b.system.run(cycles);
    b
}

/// Cycle budget that lets a clean saturated run complete its six prefilled
/// blocks per stream with slack.
pub fn clean_cycles(spec: &DeploySpec) -> u64 {
    let gamma = spec.sharing_problem().gamma(&spec.etas());
    8 * gamma + 4_000
}

/// Per-block measurement margin: Eq. 2's `(η+2)·c0` models the paper's
/// three-stage pipeline (entry, one accelerator, exit); a k-stage chain
/// fills `k−1` further stages, and the ring adds constant per-block
/// transport (hops + NI handshakes), independent of η.
pub fn tau_margin(spec: &DeploySpec) -> u64 {
    let k = spec.chain.len() as u64;
    (k - 1) * spec.c0() + 16 + 8 * k
}

/// Round margin: every block of the round carries the per-block margin.
pub fn round_margin(spec: &DeploySpec) -> u64 {
    tau_margin(spec) * spec.streams.len() as u64 + 16
}
