//! Shared machinery for the analysis integration tests: a seeded random
//! deployment generator and a saturated-run simulation harness that mirrors
//! the analyzed spec exactly (same chain, block sizes, capacities and
//! admission policy — `DeploySpec::build_platform` is the single source of
//! wiring truth for both the analyzer's view and the simulated platform).
//!
//! Each integration-test binary compiles this module independently and uses
//! a different subset of it, so the per-binary dead-code lint is off.
#![allow(dead_code)]

use streamgate_analysis::{
    AnalysisOptions, ChainStage, DeploySpec, GatewayDeploy, MultiBuiltSystem, StreamDeploy,
};
use streamgate_core::BuiltSystem;
use streamgate_ilp::Rational;
use streamgate_platform::StepMode;

/// Deterministic xorshift64 RNG (same family the sweep binaries use).
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    pub fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform in `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// Analyzer options for batch runs: the exact minimum-buffer search (a
/// Warnings-only refinement) costs seconds per stream in debug builds, and
/// disabling it never changes the accept/reject verdict.
pub fn fast_options() -> AnalysisOptions {
    AnalysisOptions {
        exact_buffers: false,
    }
}

/// A random deployment engineered to be *accepted*: throughput at half the
/// Eq. 5 limit, capacities with whole-block floors and room for six blocks.
/// Everything else (chain depth, per-stage ρ, ε, δ, R_s, block sizes,
/// stream count) is drawn freely.
pub fn random_clean_spec(rng: &mut Rng, tag: usize) -> DeploySpec {
    let chain_len = rng.range(1, 3);
    let chain: Vec<ChainStage> = (0..chain_len)
        .map(|i| ChainStage {
            name: format!("A{i}"),
            rho: rng.range(1, 6),
        })
        .collect();
    let epsilon = rng.range(1, 8);
    let delta = rng.range(1, 2);
    let ni_depth = rng.range(2, 3) as u32;
    let n_streams = rng.range(1, 3);
    let etas: Vec<u64> = (0..n_streams).map(|_| rng.range(4, 24)).collect();
    let reconfigs: Vec<u64> = (0..n_streams).map(|_| rng.range(0, 100)).collect();

    let rho_a = chain.iter().map(|s| s.rho).max().unwrap();
    let c0 = epsilon.max(rho_a).max(delta);
    let gamma: u64 = etas
        .iter()
        .zip(&reconfigs)
        .map(|(&eta, &r)| r + (eta + 2) * c0)
        .sum();

    let streams = etas
        .iter()
        .zip(&reconfigs)
        .enumerate()
        .map(|(i, (&eta, &r))| StreamDeploy {
            name: format!("s{i}"),
            // Half the Eq. 5 limit η/γ: always feasible, never marginal.
            mu: Rational::new(eta as i128, 2 * gamma as i128),
            eta_in: eta,
            eta_out: eta,
            reconfig: r,
            input_capacity: 6 * eta,
            output_capacity: 8 * eta,
            max_latency: None,
        })
        .collect();

    DeploySpec {
        name: format!("rand-{tag}"),
        chain,
        epsilon,
        delta,
        ni_depth,
        check_for_space: true,
        streams,
        processors: vec![],
        gateways: vec![],
        config_bus_period: None,
        station_map: None,
        modes: vec![],
    }
}

/// A random *multi-gateway* deployment engineered to be accepted: 2–3
/// gateway pairs on one ring, each owning a chain or sharing an earlier
/// pair's (Fig. 10 style), with rates at half the *system-scope* Eq. 5
/// limit (the pair-local limit would be unsound for shared chains) and a
/// conflict-free configuration-bus slot table.
pub fn random_multi_spec(rng: &mut Rng, tag: usize) -> DeploySpec {
    let n_gw = rng.range(2, 3) as usize;
    let epsilon = rng.range(1, 6);
    let delta = rng.range(1, 2);
    let ni_depth = rng.range(2, 3) as u32;

    let mut gateways: Vec<GatewayDeploy> = Vec::new();
    for g in 0..n_gw {
        // Half the pairs after the first share gateway 0's chain.
        let shares = g > 0 && rng.next().is_multiple_of(2) && !gateways[0].chain.is_empty();
        let chain: Vec<ChainStage> = if shares {
            vec![]
        } else {
            (0..rng.range(1, 2))
                .map(|i| ChainStage {
                    name: format!("g{g}A{i}"),
                    rho: rng.range(1, 5),
                })
                .collect()
        };
        let n_streams = rng.range(1, 2);
        let streams = (0..n_streams)
            .map(|s| StreamDeploy {
                name: format!("g{g}s{s}"),
                mu: Rational::new(0, 1), // placeholder until γ_s is known
                eta_in: 0,
                eta_out: 0,
                reconfig: rng.range(0, 60),
                input_capacity: 0,
                output_capacity: 0,
                max_latency: None,
            })
            .collect();
        gateways.push(GatewayDeploy {
            name: format!("gw{g}"),
            chain,
            shares_chain_with: if shares { Some(0) } else { None },
            streams,
            config_slot: None,
        });
    }
    // Block sizes, then rates at half the system-scope limit η/(2·G·γ_s):
    // the G in the denominator also caps the summed ring-hop load at 1/2.
    for gw in gateways.iter_mut() {
        for st in gw.streams.iter_mut() {
            let eta = rng.range(4, 24);
            st.eta_in = eta;
            st.eta_out = eta;
            st.input_capacity = 6 * eta;
            st.output_capacity = 8 * eta;
        }
    }
    let mut spec = DeploySpec {
        name: format!("multi-{tag}"),
        chain: vec![],
        epsilon,
        delta,
        ni_depth,
        check_for_space: true,
        streams: vec![],
        processors: vec![],
        gateways,
        config_bus_period: None,
        station_map: None,
        modes: vec![],
    };
    // The credit window ni_depth·c0 must cover each pair's 2·distance ring
    // round trip (layout-aware A6) — size the NI for the worst pair, plus
    // one slot of slack for cross-pair credit contention.
    let layout = spec.ring_layout();
    let needed = (0..n_gw)
        .map(|g| {
            let owner = spec.gateways[g].shares_chain_with.unwrap_or(g);
            let rho_a = spec.gateways[owner]
                .chain
                .iter()
                .map(|st| st.rho)
                .max()
                .unwrap_or(0);
            let c0 = epsilon.max(rho_a).max(delta);
            let d_max = layout
                .segments(g)
                .iter()
                .map(|&(src, dst)| layout.data_hops(src, dst).len() as u64)
                .max()
                .unwrap_or(1);
            (2 * d_max).div_ceil(c0) + 1
        })
        .max()
        .unwrap();
    spec.ni_depth = spec.ni_depth.max(needed as u32);
    let gamma_sys = system_round_bounds(&spec);
    for (g, gw) in spec.gateways.iter_mut().enumerate() {
        for s in gw.streams.iter_mut() {
            s.mu = Rational::new(s.eta_in as i128, (2 * n_gw as u64 * gamma_sys[g]) as i128);
        }
    }
    // Latency budgets on half the streams, at twice the Fig. 7 upper bound
    // (fill + γ_s) so the clean generator stays clean while A10 runs.
    for (gw, &gamma_g) in spec.gateways.iter_mut().zip(&gamma_sys) {
        for st in gw.streams.iter_mut() {
            if rng.next().is_multiple_of(2) {
                continue;
            }
            let num = (st.eta_in as i128 - 1) * st.mu.denom();
            let fill = ((num + st.mu.numer() - 1) / st.mu.numer()) as u64;
            st.max_latency = Some(2 * (fill + gamma_g));
        }
    }
    // Contiguous config-bus slots sized to each pair's largest R_s.
    let mut off = 0;
    for gw in spec.gateways.iter_mut() {
        let len = gw
            .streams
            .iter()
            .map(|s| s.reconfig)
            .max()
            .unwrap_or(0)
            .max(1);
        gw.config_slot = Some((off, len));
        off += len;
    }
    spec.config_bus_period = Some(off);
    spec
}

/// The analyzer's A8 system round bound γ_g per gateway (identical
/// arithmetic to `check_system_round`, reproduced here so the generator
/// can place rates safely *below* it).
fn system_round_bounds(spec: &DeploySpec) -> Vec<u64> {
    let group: Vec<usize> = (0..spec.gateways.len())
        .map(|g| spec.gateways[g].shares_chain_with.unwrap_or(g))
        .collect();
    let c0: Vec<u64> = (0..spec.gateways.len())
        .map(|g| {
            let owner = &spec.gateways[group[g]];
            let rho_a = owner.chain.iter().map(|st| st.rho).max().unwrap_or(0);
            spec.epsilon.max(rho_a).max(spec.delta)
        })
        .collect();
    let taus: Vec<Vec<u64>> = spec
        .gateways
        .iter()
        .enumerate()
        .map(|(g, gw)| {
            gw.streams
                .iter()
                .map(|s| s.reconfig + (s.eta_in + 2) * c0[g])
                .collect()
        })
        .collect();
    (0..spec.gateways.len())
        .map(|g| {
            let own: u64 = taus[g].iter().sum();
            let n_g = spec.gateways[g].streams.len() as u64;
            let mut interference = 0;
            for h in 0..spec.gateways.len() {
                if h == g || group[h] != group[g] || taus[h].is_empty() {
                    continue;
                }
                let claims = n_g + 1;
                let max_t = *taus[h].iter().max().unwrap();
                let sum_t: u64 = taus[h].iter().sum();
                let n_h = taus[h].len() as u64;
                interference += (claims * max_t).min(claims.div_ceil(n_h) * sum_t);
            }
            own + interference
        })
        .collect()
}

/// Build the spec's platform, prefill every input FIFO to capacity (the
/// saturated regime the round/τ̂ analysis describes — outputs are never
/// drained, which the generous output capacities absorb), and run it.
pub fn run_saturated(spec: &DeploySpec, mode: StepMode, cycles: u64) -> BuiltSystem {
    let mut b = spec.build_platform();
    b.system.step_mode = mode;
    // Full profiling, so differential tests can also collect a measured
    // `RunProfile` and feed it back through the analyzer.
    b.system.enable_profiling(0);
    for (i, s) in spec.streams.iter().enumerate() {
        for k in 0..s.input_capacity {
            if !b.push_input(i, (k as f64, 0.5)) {
                break;
            }
        }
    }
    b.system.run(cycles);
    b
}

/// Cycle budget that lets a clean saturated run complete its six prefilled
/// blocks per stream with slack.
pub fn clean_cycles(spec: &DeploySpec) -> u64 {
    let gamma = spec.sharing_problem().gamma(&spec.etas());
    8 * gamma + 4_000
}

/// Multi-gateway sibling of [`run_saturated`]: build the whole-system
/// platform, prefill every input C-FIFO on every pair, and run it.
pub fn run_saturated_multi(spec: &DeploySpec, mode: StepMode, cycles: u64) -> MultiBuiltSystem {
    let mut b = spec.build_multi_platform();
    b.system.step_mode = mode;
    // Full profiling (tracer + ring delivery log + FIFO push logs), so the
    // differential tests can also collect a measured `RunProfile` and feed
    // it back through the analyzer.
    b.system.enable_profiling(0);
    for (g, gw) in spec.gateways.iter().enumerate() {
        for (s, st) in gw.streams.iter().enumerate() {
            let fifo = b.inputs[g][s];
            for k in 0..st.input_capacity {
                if !b.system.fifos[fifo.0].try_push((k as f64, 0.5), 0) {
                    break;
                }
            }
        }
    }
    b.system.run(cycles);
    b
}

/// Cycle budget for a clean saturated multi-gateway run: eight of the
/// slowest pair's system rounds (which already include cross-pair chain
/// interference), plus slack.
pub fn multi_clean_cycles(spec: &DeploySpec) -> u64 {
    8 * system_round_bounds(spec).iter().max().copied().unwrap_or(0) + 4_000
}

// The measurement margins the assertions below widen the analytic bounds
// by are now part of the analyzer's public API (the online monitor uses
// the same calibration) — re-exported here so every differential test
// keeps reading from one definition.
#[allow(unused_imports)] // each test binary uses a different subset
pub use streamgate_analysis::{multi_tau_margin, round_margin, tau_margin};
