//! The profiling/monitoring feedback loop, end to end:
//!
//! * the online monitor, armed with analyzer bounds via `monitor_for`,
//!   flags the Fig. 9 head-of-line wedge *during* the run (with the right
//!   stream and cycle) and can stop `run_until` at the first violation;
//! * a clean check-for-space-enabled run keeps the monitor silent;
//! * `RunProfile` JSON round-trips bit-exactly through `parse_profile`;
//! * the profile JSON schema for the `pal` preset is pinned by a golden
//!   file (re-record with `GOLDEN_UPDATE=1`).

use std::path::PathBuf;
use streamgate_analysis::{
    analyze, analyze_profiled, monitor_for, parse_profile, AnalysisOptions, DeploySpec,
};
use streamgate_core::{collect_profile, ViolationKind};
use streamgate_platform::{StallCause, StepMode, System};

const ENGINES: [StepMode; 2] = [StepMode::Exhaustive, StepMode::EventDriven];

/// Build the spec's platform with profiling on and every input prefilled.
fn saturated_profiled(spec: &DeploySpec, mode: StepMode) -> streamgate_core::BuiltSystem {
    let mut b = spec.build_platform();
    b.system.step_mode = mode;
    b.system.enable_profiling(0);
    for (i, s) in spec.streams.iter().enumerate() {
        for k in 0..s.input_capacity {
            if !b.push_input(i, (k as f64, 0.5)) {
                break;
            }
        }
    }
    b
}

/// The cycle at which the (still open) exit-FIFO-full stall started, from
/// the tracer's own records — the ground truth the monitor must match.
fn open_exit_stall_start(system: &System) -> Option<u64> {
    system
        .tracer
        .open_stalls()
        .iter()
        .find(|w| w.1 == StallCause::ExitFifoFull)
        .map(|w| w.2)
}

/// Fig. 9 with the check-for-space admission test disabled: stream 1's
/// block wedges in the shared chain and head-of-line-blocks stream 0. The
/// monitor must flag it mid-run — before the cycle budget runs out — with
/// the wedged stream and the stall's start cycle, on both engines.
#[test]
fn monitor_flags_fig9_wedge_mid_run_with_stream_and_cycle() {
    let spec = DeploySpec::fig9(false);
    let report = analyze(&spec);
    assert!(
        !report.is_accepted(),
        "A5 must reject the unchecked variant"
    );
    for mode in ENGINES {
        let mut b = saturated_profiled(&spec, mode);
        let mut monitor = monitor_for(&spec, &report, &b.system);
        let budget = 20_000;
        let stopped = b.system.run_until(budget, |s| monitor.poll(&s.tracer) > 0);
        assert!(
            stopped,
            "({mode:?}) monitor never fired within {budget} cycles"
        );
        assert!(
            b.system.cycle() < budget,
            "({mode:?}) violation must surface before the run ends"
        );
        let v = monitor
            .violations()
            .iter()
            .find(|v| v.kind == ViolationKind::HeadOfLineBlocking)
            .unwrap_or_else(|| panic!("({mode:?}) no head-of-line violation reported"));
        assert_eq!(v.gateway, Some(0), "({mode:?}) wrong gateway");
        assert_eq!(
            v.stream,
            Some(1),
            "({mode:?}) the wedged block belongs to stream 1 (s1): {v}"
        );
        let start = open_exit_stall_start(&b.system)
            .expect("the wedge keeps an exit-fifo-full stall window open");
        assert_eq!(
            v.cycle, start,
            "({mode:?}) violation cycle must be the stall's start cycle"
        );
    }
}

/// The safe variant: with the admission test enabled the wedge cannot
/// form, `run_until` runs the predicate to exhaustion (the monitor-driven
/// selective-step regression on both engines), and the monitor stays
/// silent over the whole trace.
#[test]
fn monitor_stays_silent_on_fig9_with_space_check() {
    let spec = DeploySpec::fig9(true);
    let report = analyze(&spec);
    let mut blocks_by_engine = Vec::new();
    for mode in ENGINES {
        let mut b = saturated_profiled(&spec, mode);
        let mut monitor = monitor_for(&spec, &report, &b.system);
        let stopped = b.system.run_until(20_000, |s| monitor.poll(&s.tracer) > 0);
        assert!(!stopped, "({mode:?}) monitor fired on a safe run: {:?}", {
            monitor.violations()
        });
        b.system.finish_trace();
        monitor.poll(&b.system.tracer);
        assert!(
            monitor.is_clean(),
            "({mode:?}) violations after finish: {:?}",
            monitor.violations()
        );
        blocks_by_engine.push(
            (0..spec.streams.len())
                .map(|s| b.blocks_done(s))
                .collect::<Vec<_>>(),
        );
        // s1's undersized consumer FIFO means its block is never admitted
        // (that is exactly how the check excludes the wedge) — but s0 must
        // stream freely instead of starving behind it.
        assert!(
            blocks_by_engine.last().unwrap()[0] > 0,
            "({mode:?}) stream 0 starved despite the admission test"
        );
    }
    assert_eq!(
        blocks_by_engine[0], blocks_by_engine[1],
        "engines disagree under a monitor-driven run_until"
    );
}

/// `RunProfile` → JSON → `parse_profile` is the identity, so the analyzer
/// sees exactly what the simulator measured.
#[test]
fn profile_json_roundtrips_through_parser() {
    let spec = DeploySpec::fig6();
    let mut b = saturated_profiled(&spec, StepMode::Exhaustive);
    b.system.run(20_000);
    let profile = collect_profile(&mut b.system, &spec.name);
    let text = profile.to_json_text();
    let back = parse_profile(&text).expect("parse back");
    assert_eq!(profile, back);
    assert_eq!(back.to_json_text(), text);
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// The profile JSON schema for the `pal` preset, pinned byte-for-byte: a
/// fixed 40 000-cycle exhaustive saturated run of the pal deployment. Any
/// diff is a deliberate schema/measurement change — re-record with
/// `GOLDEN_UPDATE=1` and review it like an API change.
#[test]
fn pal_profile_json_matches_golden() {
    let spec = DeploySpec::pal_scaled();
    let mut b = saturated_profiled(&spec, StepMode::Exhaustive);
    b.system.run(40_000);
    let profile = collect_profile(&mut b.system, "pal");
    let actual = profile.to_json_text();

    let path = golden_path("pal_profile.json");
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::write(&path, &actual).unwrap();
    } else {
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "cannot read {}: {e} (run with GOLDEN_UPDATE=1)",
                path.display()
            )
        });
        assert_eq!(
            actual, expected,
            "pal RunProfile JSON diverged from the golden file — if the \
             change is intentional, re-record with GOLDEN_UPDATE=1"
        );
    }

    // The measured profile must also feed back cleanly: same acceptance,
    // refinement diagnostics only.
    let report = analyze_profiled(&spec, &AnalysisOptions::default(), Some(&profile));
    assert!(report.is_accepted(), "{}", report.render_text());
}
