//! Postmortem acceptance: a failing run observed the way a *deployed*
//! system would observe it — full tracing off, only the bounded flight
//! recorder on, the bound monitor armed with the analyzer's predictions —
//! must produce a postmortem whose **top blame component names the
//! injected cause**:
//!
//! * the Fig. 9 wedge (check-for-space disabled, undersized consumer
//!   FIFO) → `head-of-line` on the wedged stream `s1`;
//! * a forced mode-transition overrun (tight A12 deadline against a
//!   stream with a large reconfiguration window) → `reconfig`.
//!
//! Both dumps must round-trip through `render_postmortem` (the
//! `streamgate-analyze --postmortem` path) with the exceeded component
//! called out against its analytic ceiling.

use streamgate_analysis::{
    analyze, analyze_with, monitor_for, render_postmortem, AnalysisOptions, ChainStage, DeploySpec,
    StreamDeploy,
};
use streamgate_core::{collect_postmortem, BlameCause};
use streamgate_ilp::Rational;

/// Fig. 9 wedge: stream `s1`'s consumer FIFO (capacity 4 < η = 16) is
/// never drained and the check-for-space admission test is off, so its
/// block wedges in the shared exit FIFO and head-of-line-blocks `s0`.
#[test]
fn fig9_wedge_postmortem_names_head_of_line_on_s1() {
    let spec = DeploySpec::fig9(false);
    let report = analyze(&spec);
    let mut b = spec.build_platform();
    // Production observability only: bounded recorder, no full trace.
    b.system.enable_flight_recorder(4096);
    for (i, s) in spec.streams.iter().enumerate() {
        for k in 0..s.input_capacity {
            if !b.push_input(i, (k as f64, 0.5)) {
                break;
            }
        }
    }
    b.system.run(20_000);

    let mut monitor = monitor_for(&spec, &report, &b.system);
    assert!(
        monitor.poll(&b.system.tracer) > 0,
        "the Fig. 9 wedge must trip the armed monitor"
    );
    assert!(
        monitor
            .violations()
            .iter()
            .any(|v| v.kind.name() == "head-of-line-blocking" && v.stream_name == "s1"),
        "wedge violation must pin stream s1: {:?}",
        monitor.violations()
    );

    let pm = collect_postmortem(&b.system, &monitor, &spec.name);
    let blame = pm.blame.as_ref().expect("wedged block must be attributed");
    assert_eq!(blame.stream_name, "s1", "blame must pin the wedged stream");
    assert_eq!(
        blame.block.top_cause().0,
        BlameCause::HeadOfLine,
        "top blame component must name the injected cause: {:?}",
        blame.block.components
    );
    let total: u64 = blame.block.components.iter().sum();
    assert_eq!(
        total,
        blame.block.tau(),
        "in-flight attribution must still tile the elapsed block time"
    );

    // The dump must survive the `streamgate-analyze --postmortem` path and
    // call out the head-of-line component as exceeding its ceiling (0 with
    // the check off would be unsound, so the ceiling is the τ̂ slack — the
    // wedge dwarfs it).
    let json = streamgate_analysis::json::parse(&pm.to_json_text()).expect("dump parses");
    let rendered = render_postmortem(
        &spec,
        &analyze_with(&spec, &AnalysisOptions::default()),
        &json,
    )
    .expect("dump renders");
    assert!(rendered.contains("head-of-line"), "{rendered}");
    assert!(rendered.contains("EXCEEDED"), "{rendered}");
    assert!(rendered.contains("`s1`"), "{rendered}");
}

/// Forced transition overrun: one stream whose reconfiguration window
/// (R = 500) dominates every block, with an A12 deadline armed only 10
/// cycles out. The first post-arm block completes long after the deadline,
/// the monitor reports the overrun, and the postmortem blames `reconfig`.
#[test]
fn forced_transition_overrun_postmortem_names_reconfig() {
    let spec = DeploySpec {
        name: "overrun-forced".into(),
        chain: vec![ChainStage {
            name: "acc".into(),
            rho: 1,
        }],
        epsilon: 2,
        delta: 1,
        ni_depth: 2,
        check_for_space: true,
        streams: vec![StreamDeploy {
            name: "s0".into(),
            mu: Rational::new(1, 1_000_000),
            eta_in: 16,
            eta_out: 16,
            reconfig: 500,
            input_capacity: 4096,
            output_capacity: 1 << 16,
            max_latency: None,
        }],
        processors: vec![],
        gateways: vec![],
        config_bus_period: None,
        station_map: None,
        modes: vec![],
    };
    let report = analyze(&spec);
    assert!(report.is_accepted(), "{}", report.render_text());

    let mut b = spec.build_platform();
    b.system.enable_flight_recorder(4096);
    // Exactly two blocks of input: the run ends with no block in flight,
    // exercising the completed-block fallback of the postmortem path.
    for k in 0..32 {
        assert!(b.push_input(0, (k as f64, 0.5)));
    }
    let mut monitor = monitor_for(&spec, &report, &b.system);
    b.system.run(600);
    monitor.poll(&b.system.tracer);
    assert!(monitor.is_clean(), "{:?}", monitor.violations());

    // The injected failure: a deadline far tighter than R = 500 allows.
    let deadline = b.system.cycle() + 10;
    monitor.arm_transition_deadline(0, "s0", deadline);
    b.system.run(2_000);
    monitor.poll(&b.system.tracer);
    assert!(
        monitor
            .violations()
            .iter()
            .any(|v| v.kind.name() == "transition-overrun"),
        "the tight deadline must fire: {:?}",
        monitor.violations()
    );

    let pm = collect_postmortem(&b.system, &monitor, &spec.name);
    let blame = pm.blame.as_ref().expect("overrun block must be attributed");
    assert_eq!(blame.stream_name, "s0");
    assert!(
        blame.block.completed,
        "fallback attributes the finished block"
    );
    assert_eq!(
        blame.block.top_cause().0,
        BlameCause::Reconfig,
        "top blame component must name the injected cause: {:?}",
        blame.block.components
    );
    assert_eq!(
        blame.block.components[BlameCause::Reconfig.index()],
        500,
        "the full R window is charged"
    );

    let json = streamgate_analysis::json::parse(&pm.to_json_text()).expect("dump parses");
    let rendered = render_postmortem(
        &spec,
        &analyze_with(&spec, &AnalysisOptions::default()),
        &json,
    )
    .expect("dump renders");
    assert!(rendered.contains("transition-overrun"), "{rendered}");
    assert!(rendered.contains("reconfig"), "{rendered}");
}
