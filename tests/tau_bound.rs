//! Integration + property test for Eq. 2: on the cycle-level platform, no
//! block ever exceeds τ̂ = R + (η+2)·max(ε, ρ_A, δ) plus the constant ring
//! transport margin.

use proptest::prelude::*;
use streamgate::core::{measure_block_times, GatewayParams, SharingProblem, StreamSpec};
use streamgate::ilp::rat;
use streamgate::platform::{
    AcceleratorTile, CFifo, GatewayPair, PassthroughKernel, StreamConfig, System,
};

fn run_case(eta: usize, epsilon: u64, rho_a: u64, reconfig: u64) -> (u64, u64) {
    let mut sys = System::new(4);
    sys.enable_tracing(0); // measurement comes from the tracer's event log
    let i0 = sys.add_fifo(CFifo::new("i0", 4096));
    let o0 = sys.add_fifo(CFifo::new("o0", 1 << 20));
    let acc = sys.add_accel({
        let mut a = AcceleratorTile::new("acc", 1, 0, 10, 2, 11, 2, rho_a);
        a.cycles_per_sample = rho_a;
        a
    });
    let mut gw = GatewayPair::new("gw", 0, 2, vec![acc], 1, 10, 1, 11, 2, epsilon, 1);
    gw.add_stream(StreamConfig::new(
        "s0",
        i0,
        o0,
        eta,
        eta,
        reconfig,
        vec![Box::new(PassthroughKernel)],
    ));
    sys.add_gateway(gw);
    for k in 0..4096 {
        sys.fifos[i0.0].try_push((k as f64, 0.0), 0);
    }
    let prob = SharingProblem {
        params: GatewayParams {
            epsilon,
            rho_a,
            delta: 1,
        },
        streams: vec![StreamSpec {
            name: "s0".into(),
            mu: rat(1, 1_000_000),
            reconfig,
        }],
    };
    let tau_hat = prob.tau_hat(0, eta as u64);
    sys.run((tau_hat * 5).max(10_000));
    let times = measure_block_times(&sys, 0);
    (times[0].iter().copied().max().unwrap_or(0), tau_hat)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tau_hat_dominates_measured_blocks(
        eta in 2usize..40,
        epsilon in 1u64..12,
        rho_a in 1u64..6,
        reconfig in 0u64..300,
    ) {
        let (measured, tau_hat) = run_case(eta, epsilon, rho_a, reconfig);
        prop_assert!(measured > 0, "no block completed");
        // Constant ring-transport margin (2 hops entry->acc + 2 acc->exit,
        // pipelined): 8 cycles covers every topology used here.
        prop_assert!(
            measured <= tau_hat + 8,
            "measured {measured} > τ̂ {tau_hat} + margin"
        );
    }
}

#[test]
fn bound_is_tight_when_epsilon_dominates() {
    let (measured, tau_hat) = run_case(30, 10, 1, 200);
    // Within 10 % of the bound — Eq. 2 is not vacuous.
    assert!(
        measured as f64 > 0.9 * tau_hat as f64,
        "{measured} vs {tau_hat}"
    );
}
