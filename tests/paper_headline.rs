//! Integration: the paper's headline numbers, end to end across crates.

use streamgate::core::params::PAL_CLOCK_HZ;
use streamgate::core::{solve_blocksizes_checked, SharingProblem};
use streamgate::hwcost::{components::cordic_ref, components::fir_ref, sharing_report};

#[test]
fn section6_block_sizes_exact() {
    let prob = SharingProblem::pal_decoder(PAL_CLOCK_HZ);
    let sol = solve_blocksizes_checked(&prob).unwrap();
    assert_eq!(sol.etas, vec![10136, 10136, 1267, 1267]);
    // 8:1 ratio "due to down-sampling" (§VI-A).
    assert_eq!(sol.etas[0], 8 * sol.etas[2]);
    // The published sizes are tight: any single decrement is infeasible.
    for s in 0..4 {
        let mut smaller = sol.etas.clone();
        smaller[s] -= 1;
        assert!(!prob.satisfies_throughput(&smaller), "η[{s}] not minimal");
    }
}

#[test]
fn table1_savings_exact() {
    let r = sharing_report(4, &[fir_ref(), cordic_ref()]);
    assert_eq!(r.non_shared.slices, 32904);
    assert_eq!(r.non_shared.luts, 50876);
    assert_eq!(r.shared.slices, 12014);
    assert_eq!(r.shared.luts, 17164);
    assert_eq!(r.saved.slices, 20890); // "reduces the number of logic cells with 63%"
    assert_eq!(r.saved.luts, 33712);
    assert!((r.percent.0 - 63.5).abs() < 0.05);
    assert!((r.percent.1 - 66.3).abs() < 0.05);
}

#[test]
fn accelerator_count_reduction() {
    // "sharing reduces the number of accelerators by 75%": 8 instances
    // (4×CORDIC + 4×FIR) become 2.
    let before = 4 + 4;
    let after = 1 + 1;
    assert_eq!((before - after) * 100 / before, 75);
}

#[test]
fn operating_point_is_near_saturation() {
    let prob = SharingProblem::pal_decoder(PAL_CLOCK_HZ);
    let u = prob.utilisation().to_f64();
    assert!(u > 0.95 && u < 0.96, "utilisation {u}");
    // Below the utilisation bound no block size works:
    assert!(!SharingProblem::pal_decoder(95_256_000).is_feasible());
    assert!(SharingProblem::pal_decoder(95_256_001).is_feasible());
}
