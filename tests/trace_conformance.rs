//! Bound-conformance through the observability layer ONLY: every measured
//! quantity in this test comes from the tracer's event log (via
//! `core::metrics`), never from simulator internals.
//!
//! * Eq. 2: every completed block of every stream satisfies τ ≤ τ̂ (plus
//!   the constant ring-transport margin);
//! * Eq. 4: on a saturated harness every measured round fits within γ; on
//!   the paced PAL decoder the round *service demand* fits within γ and the
//!   round wall time within max(γ, η/μ) — Eq. 5's feasibility condition.

use streamgate::core::{
    build_pal_system, system_metrics, GatewayParams, PalSystemConfig, SharingProblem, StreamSpec,
};
use streamgate::ilp::rat;
use streamgate::platform::{
    AcceleratorTile, CFifo, GatewayPair, PassthroughKernel, StallCause, StreamConfig, System,
};

/// Ring-transport margin: the last samples of a block cross the ring after
/// the DMA queued them; the paper folds this constant into ε/δ.
const RING_MARGIN: u64 = 16;

/// The two-stream saturated harness of `core::validate`: two passthrough
/// streams over one shared accelerator, inputs prefilled.
fn two_stream_harness(etas: [usize; 2], reconfig: u64, epsilon: u64) -> (System, SharingProblem) {
    let mut sys = System::new(4);
    sys.enable_tracing(0);
    let i0 = sys.add_fifo(CFifo::new("i0", 4096));
    let o0 = sys.add_fifo(CFifo::new("o0", 1 << 20));
    let i1 = sys.add_fifo(CFifo::new("i1", 4096));
    let o1 = sys.add_fifo(CFifo::new("o1", 1 << 20));
    let acc = sys.add_accel(AcceleratorTile::new("acc", 1, 0, 10, 2, 11, 2, 1));
    let mut gw = GatewayPair::new("gw", 0, 2, vec![acc], 1, 10, 1, 11, 2, epsilon, 1);
    gw.add_stream(StreamConfig::new(
        "s0",
        i0,
        o0,
        etas[0],
        etas[0],
        reconfig,
        vec![Box::new(PassthroughKernel)],
    ));
    gw.add_stream(StreamConfig::new(
        "s1",
        i1,
        o1,
        etas[1],
        etas[1],
        reconfig,
        vec![Box::new(PassthroughKernel)],
    ));
    sys.add_gateway(gw);
    for k in 0..4096 {
        sys.fifos[i0.0].try_push((k as f64, 0.0), 0);
        sys.fifos[i1.0].try_push((k as f64, 0.0), 0);
    }
    let prob = SharingProblem {
        params: GatewayParams {
            epsilon,
            rho_a: 1,
            delta: 1,
        },
        streams: vec![
            StreamSpec {
                name: "s0".into(),
                mu: rat(1, 1000),
                reconfig,
            },
            StreamSpec {
                name: "s1".into(),
                mu: rat(1, 1000),
                reconfig,
            },
        ],
    };
    (sys, prob)
}

#[test]
fn two_stream_blocks_and_rounds_within_bounds() {
    let etas = [32u64, 16u64];
    let (mut sys, prob) = two_stream_harness([32, 16], 50, 5);
    sys.run(60_000);

    let metrics = system_metrics(&sys, 0);
    // Per-block τ conformance, every block of every stream, tracer-only.
    for (s, m) in metrics.streams.iter().enumerate() {
        assert!(m.blocks() >= 3, "stream {s}: only {} blocks", m.blocks());
        let tau_hat = prob.tau_hat(s, etas[s]);
        for (k, &tau) in m.taus.iter().enumerate() {
            assert!(
                tau <= tau_hat + RING_MARGIN,
                "stream {s} block {k}: τ {tau} > τ̂ {tau_hat} (+{RING_MARGIN})"
            );
        }
    }
    // Round conformance (Eq. 4): saturated streams → every window of one
    // block per stream completes within γ plus the per-block ring margin.
    let gamma = prob.gamma(&etas);
    let rounds = metrics.round_times();
    assert!(!rounds.is_empty(), "no full round completed");
    for (k, &r) in rounds.iter().enumerate() {
        assert!(
            r <= gamma + 2 * RING_MARGIN,
            "round {k}: {r} > γ {gamma} (+{})",
            2 * RING_MARGIN
        );
    }
    // Saturated inputs and huge outputs: admission never waited for space.
    assert_eq!(metrics.stall_cycles(StallCause::CheckForSpace), 0);
    assert_eq!(metrics.stall_cycles(StallCause::ExitFifoFull), 0);
}

#[test]
fn pal_decoder_conforms_via_tracer_metrics() {
    let cfg = PalSystemConfig::scaled_default();
    let prob = cfg.sharing_problem();
    let mut pal = build_pal_system(&cfg);
    pal.system.enable_tracing(0);
    pal.system.run(300_000);

    let metrics = system_metrics(&pal.system, pal.gateway);
    let n = metrics.num_streams;
    assert_eq!(n, 4);

    // Eq. 2 on every block of all four PAL streams.
    for (s, m) in metrics.streams.iter().enumerate() {
        assert!(m.blocks() >= 3, "stream {s}: only {} blocks", m.blocks());
        let tau_hat = prob.tau_hat(s, cfg.etas[s]);
        for (k, &tau) in m.taus.iter().enumerate() {
            assert!(
                tau <= tau_hat + RING_MARGIN,
                "stream {s} block {k}: τ {tau} > τ̂ {tau_hat}"
            );
        }
    }

    let gamma = prob.gamma(&cfg.etas);

    // Eq. 4 on the paced decoder: each round's *service demand* — the sum
    // of its member block times; the gateway serves one block per stream
    // per round — fits within γ. (Wall time additionally contains waiting
    // for the paced source, checked against η/μ below.)
    for w in metrics.blocks.windows(n) {
        let mut streams_seen: Vec<usize> = w.iter().map(|b| b.stream).collect();
        streams_seen.sort_unstable();
        assert_eq!(
            streams_seen,
            vec![0, 1, 2, 3],
            "round-robin must serve each stream once per round"
        );
        let demand: u64 = w.iter().map(|b| b.tau()).sum();
        assert!(
            demand <= gamma + (n as u64) * RING_MARGIN,
            "round service demand {demand} > γ {gamma}"
        );
    }

    // Eq. 5 feasibility: round wall time is bounded by the block period
    // η_s/μ_s of the slowest-filling stream (the source paces admissions),
    // which feasibility guarantees is ≥ γ.
    let period = cfg
        .etas
        .iter()
        .zip(&prob.streams)
        .map(|(&eta, s)| (eta as f64 / s.mu.to_f64()).ceil() as u64)
        .max()
        .unwrap();
    assert!(period >= gamma, "Eq. 5: block period must dominate γ");
    let max_round = metrics.max_round_time().expect("at least one round");
    assert!(
        max_round <= period + (n as u64) * RING_MARGIN,
        "round wall time {max_round} > block period {period}"
    );

    // The PAL operating point leaves headroom: no stall of any cause.
    for cause in StallCause::ALL {
        assert_eq!(
            metrics.stall_cycles(cause),
            0,
            "unexpected {cause} stall cycles at the PAL operating point"
        );
    }
}
