//! Integration: the refinement chain of Fig. 2 — the detailed CSDF model
//! refines the single-actor SDF abstraction for every stream and block
//! size, and the abstraction's throughput guarantee transfers.

use proptest::prelude::*;
use streamgate::core::{
    sdf_abstraction, verify_csdf_refines_sdf, GatewayParams, SharingProblem, StreamSpec,
};
use streamgate::dataflow::{simulate, RefinementOutcome};
use streamgate::ilp::rat;

fn problem(n: usize, epsilon: u64, reconfig: u64) -> SharingProblem {
    SharingProblem {
        params: GatewayParams {
            epsilon,
            rho_a: 1,
            delta: 1,
        },
        streams: (0..n)
            .map(|i| StreamSpec {
                name: format!("s{i}"),
                mu: rat(1, 50 * (i as i128 + 2) * n as i128 * epsilon as i128),
                reconfig,
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn csdf_refines_sdf_everywhere(
        n in 1usize..4,
        epsilon in 1u64..8,
        reconfig in 0u64..100,
        eta_scale in 1u64..6,
    ) {
        let prob = problem(n, epsilon, reconfig);
        let etas: Vec<u64> = (0..n).map(|i| eta_scale * 2 + i as u64).collect();
        for s in 0..n {
            let (outcome, csdf_t, _sdf_t) =
                verify_csdf_refines_sdf(&prob, s, &etas, 10, 1, 2);
            prop_assert_eq!(&outcome, &RefinementOutcome::Refines,
                "stream {} of {:?}", s, etas);
            prop_assert!(!csdf_t.is_empty());
        }
    }
}

#[test]
fn abstraction_guarantee_transfers_to_solver_solution() {
    // Solve Algorithm 1, then confirm the abstraction graph actually
    // sustains μ for each stream (Eq. 5 realised, not just stated).
    let prob = problem(3, 4, 50);
    let sol = streamgate::core::solve_blocksizes_checked(&prob).unwrap();
    for s in 0..3 {
        let eta = sol.etas[s];
        let rho_p = prob.streams[s].mu.recip().floor() as u64;
        let a = sdf_abstraction(&prob, s, &sol.etas, rho_p, 1, 2 * eta, 2 * eta);
        let t = simulate(&a.graph, 10).unwrap();
        assert!(!t.deadlocked);
        let period = t.period_estimate(a.v_s).unwrap();
        let rate = rat(eta as i128, 1) / period;
        assert!(
            rate >= prob.streams[s].mu,
            "stream {s}: {rate} < μ {}",
            prob.streams[s].mu
        );
    }
}
