//! Integration: the full PAL stereo decoder on the cycle-level platform —
//! blocks of four streams multiplexed over one CORDIC and one FIR+8:1,
//! producing correctly-separated stereo audio in real time.

use streamgate::core::{build_pal_system, PalSystemConfig};
use streamgate::dsp::tone_power;

#[test]
fn pal_system_decodes_stereo_in_real_time() {
    let cfg = PalSystemConfig::scaled_default();
    let prob = cfg.sharing_problem();
    assert!(prob.is_feasible());
    assert!(prob.satisfies_throughput(&cfg.etas));

    let mut pal = build_pal_system(&cfg);
    // 700 ms of platform time: enough for filter transients plus a useful
    // audio window, while staying debug-build friendly.
    let cycles = cfg.clock_hz * 7 / 10;
    pal.system.run(cycles);

    // Round-robin served all four streams.
    let blocks_done: Vec<u64> = (0..4)
        .map(|s| pal.system.gateways[0].stream(s).blocks_done)
        .collect();
    for (s, b) in blocks_done.iter().enumerate() {
        assert!(*b >= 2, "stream {s} starved: {b} blocks");
    }

    // No front-end overruns would show up as missing input samples; the
    // input FIFOs never filled up (real-time admission kept up).
    let (left, right) = pal.take_audio();
    let fs_audio = cfg.pal.audio_rate();
    let expected = fs_audio * (cycles as f64 / cfg.clock_hz as f64);
    assert!(
        left.len() as f64 >= 0.9 * expected,
        "audio underrun: {} of {expected} samples",
        left.len()
    );

    // Stereo separation: L carries the 400 Hz tone, R the 700 Hz tone.
    let skip = 64;
    let l = &left[skip..];
    let r = &right[skip..];
    let (f_l, f_r) = cfg.tones;
    assert!(
        tone_power(l, f_l, fs_audio) > 20.0 * tone_power(l, f_r, fs_audio),
        "left channel not separated"
    );
    assert!(
        tone_power(r, f_r, fs_audio) > 20.0 * tone_power(r, f_l, fs_audio),
        "right channel not separated"
    );

    // Sharing: both accelerators served every stream.
    assert!(pal.system.accels[0].samples_in > 0);
    assert!(pal.system.accels[1].samples_in > 0);
    let front_in = blocks_done[0] * cfg.etas[0]
        + blocks_done[1] * cfg.etas[1]
        + blocks_done[2] * cfg.etas[2]
        + blocks_done[3] * cfg.etas[3];
    assert_eq!(
        pal.system.accels[0].samples_in, front_in,
        "every multiplexed sample passed through the single CORDIC"
    );
}
