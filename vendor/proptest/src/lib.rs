//! Minimal, deterministic re-implementation of the subset of the
//! [proptest](https://crates.io/crates/proptest) API used by this workspace.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched; this shim keeps the property tests runnable. Differences from
//! upstream:
//!
//! * no shrinking — a failing case reports its case index (the RNG is
//!   seeded deterministically from the test name, so failures reproduce);
//! * strategies are plain generators (`Strategy::generate`), not
//!   value trees;
//! * only the combinators the workspace uses exist: integer ranges,
//!   tuples, `Just`, `prop_map`, `prop_flat_map`, `collection::vec`.

/// Deterministic 64-bit RNG (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary value.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed deterministically from a test name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at test-generation scale.
        self.next_u64() % n
    }
}

/// Why a test case did not pass.
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs — the case is skipped.
    Reject,
    /// `prop_assert!`/`prop_assert_eq!` failed — the test fails.
    Fail(String),
}

/// Runner configuration (`cases` is the only knob the workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a strategy from it, then that strategy's value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred` (bounded retries).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// Always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// i128 spans can exceed u64; treated separately with a u64-bounded span
// (ranges wider than 2^63 are not used in tests).
impl Strategy for ::std::ops::Range<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = u64::try_from(self.end - self.start).expect("i128 range too wide for shim");
        self.start + rng.below(span) as i128
    }
}

impl Strategy for ::std::ops::RangeInclusive<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let span = u64::try_from(hi - lo + 1).expect("i128 range too wide for shim");
        lo + rng.below(span) as i128
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification for [`vec()`].
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy yielding `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with `size` elements (a count or a range of counts).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.max > self.size.min {
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize
            } else {
                self.size.min
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Assert a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skip the current case when its inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed at case {}: {}", stringify!($name), case, msg)
                    }
                }
            }
        }
    )*};
}
