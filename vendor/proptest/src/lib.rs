//! Minimal, deterministic re-implementation of the subset of the
//! [proptest](https://crates.io/crates/proptest) API used by this workspace.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched; this shim keeps the property tests runnable. Differences from
//! upstream:
//!
//! * shrinking operates on the *choice sequence* (the raw RNG draws of the
//!   failing case) rather than on value trees — smaller draws mean values
//!   closer to their range starts and shorter collections, so minimization
//!   works through `prop_map`/`prop_flat_map` without strategies having to
//!   know how to shrink their outputs;
//! * a failing test prints a replayable seed: set `PROPTEST_REPLAY` to the
//!   printed `test_name:choices` string to re-run exactly the minimized
//!   counterexample;
//! * strategies are plain generators (`Strategy::generate`), not
//!   value trees;
//! * only the combinators the workspace uses exist: integer ranges,
//!   tuples, `Just`, `prop_map`, `prop_flat_map`, `collection::vec`.

/// Deterministic 64-bit RNG (splitmix64), optionally recording its draws or
/// replaying a previously recorded choice sequence.
pub struct TestRng {
    state: u64,
    /// Replay buffer and cursor; when the buffer is exhausted the RNG
    /// yields zeros (the minimal draw) so shrunk sequences that need more
    /// draws than were recorded stay deterministic.
    replay: Option<(Vec<u64>, usize)>,
    /// Recording buffer for the draws of the current case.
    record: Option<Vec<u64>>,
}

impl TestRng {
    /// Seed from an arbitrary value.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
            replay: None,
            record: None,
        }
    }

    /// Seed deterministically from a test name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// An RNG that replays `choices` verbatim, then yields zeros.
    pub fn from_choices(choices: Vec<u64>) -> Self {
        TestRng {
            state: 0,
            replay: Some((choices, 0)),
            record: None,
        }
    }

    /// Start recording draws (used by the runner around each case).
    pub fn begin_record(&mut self) {
        self.record = Some(Vec::new());
    }

    /// Stop recording and return the recorded choice sequence.
    pub fn end_record(&mut self) -> Vec<u64> {
        self.record.take().unwrap_or_default()
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let v = if let Some((seq, idx)) = &mut self.replay {
            let v = seq.get(*idx).copied().unwrap_or(0);
            *idx += 1;
            v
        } else {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        if let Some(rec) = &mut self.record {
            rec.push(v);
        }
        v
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at test-generation scale.
        self.next_u64() % n
    }
}

/// Why a test case did not pass.
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs — the case is skipped.
    Reject,
    /// `prop_assert!`/`prop_assert_eq!` failed — the test fails.
    Fail(String),
}

/// Runner configuration (`cases` is the only knob the workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a strategy from it, then that strategy's value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred` (bounded retries).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// Always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// i128 spans can exceed u64; treated separately with a u64-bounded span
// (ranges wider than 2^63 are not used in tests).
impl Strategy for ::std::ops::Range<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = u64::try_from(self.end - self.start).expect("i128 range too wide for shim");
        self.start + rng.below(span) as i128
    }
}

impl Strategy for ::std::ops::RangeInclusive<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let span = u64::try_from(hi - lo + 1).expect("i128 range too wide for shim");
        lo + rng.below(span) as i128
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification for [`vec()`].
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy yielding `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with `size` elements (a count or a range of counts).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.max > self.size.min {
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize
            } else {
                self.size.min
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Encode a choice sequence as the compact text form printed in failure
/// messages (lowercase hex, `.`-separated).
pub fn encode_choices(seq: &[u64]) -> String {
    seq.iter()
        .map(|v| format!("{v:x}"))
        .collect::<Vec<_>>()
        .join(".")
}

/// Decode the text form produced by [`encode_choices`].
pub fn decode_choices(s: &str) -> Option<Vec<u64>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split('.')
        .map(|p| u64::from_str_radix(p, 16).ok())
        .collect()
}

/// If `PROPTEST_REPLAY` is set and names this test (`name:choices`, where
/// `name` may be the bare test name or any suffix of the full module path),
/// return the choice sequence to replay.
pub fn replay_request(full_name: &str) -> Option<Vec<u64>> {
    let var = std::env::var("PROPTEST_REPLAY").ok()?;
    let (name, choices) = var.split_once(':')?;
    let matches = full_name == name
        || (full_name.ends_with(name) && full_name[..full_name.len() - name.len()].ends_with("::"));
    if !matches {
        return None;
    }
    decode_choices(choices)
}

/// Outcome of [`shrink_case`].
pub struct Shrunk {
    /// The minimized choice sequence (still failing).
    pub choices: Vec<u64>,
    /// Failure message produced by the minimized sequence.
    pub message: String,
    /// Number of candidate executions spent shrinking.
    pub runs: u32,
}

/// Minimize a failing choice sequence.
///
/// Candidates replace draws with smaller values (chunk zeroing first, then
/// per-draw binary reduction); a candidate is kept only if re-running the
/// case with it still *fails* (rejections don't count). The result is a
/// local minimum: no single remaining draw can be zeroed, halved, or
/// decremented without the failure disappearing. Execution count is
/// bounded so pathological cases terminate.
pub fn shrink_case<F>(seq: Vec<u64>, message: String, mut run: F) -> Shrunk
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    const MAX_RUNS: u32 = 1024;
    let mut runs = 0u32;
    let mut fails = |cand: &[u64], runs: &mut u32| -> Option<String> {
        if *runs >= MAX_RUNS {
            return None;
        }
        *runs += 1;
        let mut rng = TestRng::from_choices(cand.to_vec());
        match run(&mut rng) {
            Err(TestCaseError::Fail(m)) => Some(m),
            _ => None,
        }
    };
    let mut best = seq;
    let mut best_msg = message;
    loop {
        let mut improved = false;
        // Pass 1: zero whole chunks, largest first — collapses topology
        // sizes and cycle counts in few executions.
        let mut chunk = best.len().max(1);
        while chunk >= 1 {
            let mut start = 0;
            while start < best.len() {
                let end = (start + chunk).min(best.len());
                if best[start..end].iter().any(|&v| v != 0) {
                    let mut cand = best.clone();
                    cand[start..end].fill(0);
                    if let Some(m) = fails(&cand, &mut runs) {
                        best = cand;
                        best_msg = m;
                        improved = true;
                    }
                }
                start += chunk;
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        // Pass 2: shrink each surviving draw numerically (halve, then
        // decrement) so in-range values move toward their range starts.
        for i in 0..best.len() {
            while best[i] != 0 && runs < MAX_RUNS {
                let v = best[i];
                let mut done = true;
                for cand_v in [v / 2, v - 1] {
                    let mut cand = best.clone();
                    cand[i] = cand_v;
                    if let Some(m) = fails(&cand, &mut runs) {
                        best = cand;
                        best_msg = m;
                        improved = true;
                        done = false;
                        break;
                    }
                }
                if done {
                    break;
                }
            }
        }
        // Drop trailing zeros — replay-exhausted draws are zero anyway.
        while best.last() == Some(&0) {
            best.pop();
        }
        if !improved || runs >= MAX_RUNS {
            break;
        }
    }
    Shrunk {
        choices: best,
        message: best_msg,
        runs,
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Assert a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skip the current case when its inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let full_name = concat!(module_path!(), "::", stringify!($name));
            let run_one = |rng: &mut $crate::TestRng|
                -> ::std::result::Result<(), $crate::TestCaseError> {
                $(let $pat = $crate::Strategy::generate(&($strat), rng);)*
                $body
                ::std::result::Result::Ok(())
            };
            if let ::std::option::Option::Some(choices) = $crate::replay_request(full_name) {
                let mut rng = $crate::TestRng::from_choices(choices);
                match run_one(&mut rng) {
                    ::std::result::Result::Ok(()) => return,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        panic!("proptest {} replay: inputs rejected by prop_assume", stringify!($name))
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} replay failed: {}", stringify!($name), msg)
                    }
                }
            }
            let mut rng = $crate::TestRng::from_name(full_name);
            for case in 0..config.cases {
                rng.begin_record();
                let outcome = run_one(&mut rng);
                let choices = rng.end_record();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        let shrunk = $crate::shrink_case(choices, msg, run_one);
                        panic!(
                            "proptest {name} failed at case {case}, minimized in {runs} shrink runs: {msg}\n\
                             replay with: PROPTEST_REPLAY='{full}:{seed}' cargo test {name}",
                            name = stringify!($name),
                            case = case,
                            runs = shrunk.runs,
                            msg = shrunk.message,
                            full = full_name,
                            seed = $crate::encode_choices(&shrunk.choices),
                        )
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_encoding_roundtrips() {
        for seq in [vec![], vec![0], vec![1, 0xdead_beef, u64::MAX]] {
            assert_eq!(decode_choices(&encode_choices(&seq)).unwrap(), seq);
        }
        assert!(decode_choices("xyz").is_none());
    }

    #[test]
    fn replay_rng_yields_choices_then_zeros() {
        let mut rng = TestRng::from_choices(vec![7, 9]);
        assert_eq!(rng.next_u64(), 7);
        assert_eq!(rng.next_u64(), 9);
        assert_eq!(rng.next_u64(), 0);
        assert_eq!(rng.next_u64(), 0);
    }

    #[test]
    fn recording_captures_draws() {
        let mut rng = TestRng::new(42);
        rng.begin_record();
        let a = rng.next_u64();
        let b = rng.below(100);
        let rec = rng.end_record();
        assert_eq!(rec.len(), 2);
        assert_eq!(rec[0], a);
        assert_eq!(rec[1] % 100, b);
    }

    #[test]
    fn shrink_finds_minimal_integer_counterexample() {
        // Property: x < 500 over x in 0..=10_000. Minimal counterexample
        // is x == 500; shrinking the raw draw must land exactly there.
        let strat = 0u64..=10_000;
        let run = |rng: &mut TestRng| -> Result<(), TestCaseError> {
            let x = strat.generate(rng);
            if x >= 500 {
                return Err(TestCaseError::Fail(format!("x = {x}")));
            }
            Ok(())
        };
        // Find a failing draw the same way the runner does.
        let mut rng = TestRng::new(1);
        let (choices, msg) = loop {
            rng.begin_record();
            let out = run(&mut rng);
            let rec = rng.end_record();
            if let Err(TestCaseError::Fail(m)) = out {
                break (rec, m);
            }
        };
        let shrunk = shrink_case(choices, msg, run);
        let mut replay = TestRng::from_choices(shrunk.choices.clone());
        assert_eq!(strat.generate(&mut replay), 500, "minimal counterexample");
        assert_eq!(shrunk.message, "x = 500");
    }

    #[test]
    fn shrink_minimizes_vec_length_and_elements() {
        // Property: the sum of the vec is < 10. A minimal counterexample
        // is a single element of value 10 (lengths shrink toward the
        // minimum, elements toward zero).
        let strat = collection::vec(0u64..=1000, 1..=8);
        let run = |rng: &mut TestRng| -> Result<(), TestCaseError> {
            let v = strat.generate(rng);
            if v.iter().sum::<u64>() >= 10 {
                return Err(TestCaseError::Fail(format!("{v:?}")));
            }
            Ok(())
        };
        let mut rng = TestRng::new(2);
        let (choices, msg) = loop {
            rng.begin_record();
            let out = run(&mut rng);
            let rec = rng.end_record();
            if let Err(TestCaseError::Fail(m)) = out {
                break (rec, m);
            }
        };
        let shrunk = shrink_case(choices, msg, run);
        let mut replay = TestRng::from_choices(shrunk.choices.clone());
        let v = strat.generate(&mut replay);
        assert_eq!(v.len(), 1, "length must shrink to the minimum: {v:?}");
        assert_eq!(v[0], 10, "element must shrink to the boundary: {v:?}");
    }

    #[test]
    fn shrink_works_through_prop_map() {
        // Values only reachable through a map: shrinking operates on the
        // underlying draws, so the mapped minimum (40 = 4 * 10) is found.
        let strat = (0u64..=100).prop_map(|x| x * 4);
        let run = |rng: &mut TestRng| -> Result<(), TestCaseError> {
            let x = strat.generate(rng);
            if x >= 40 {
                return Err(TestCaseError::Fail(format!("x = {x}")));
            }
            Ok(())
        };
        let mut rng = TestRng::new(3);
        let (choices, msg) = loop {
            rng.begin_record();
            let out = run(&mut rng);
            let rec = rng.end_record();
            if let Err(TestCaseError::Fail(m)) = out {
                break (rec, m);
            }
        };
        let shrunk = shrink_case(choices, msg, run);
        let mut replay = TestRng::from_choices(shrunk.choices.clone());
        assert_eq!(strat.generate(&mut replay), 40);
    }

    #[test]
    fn replay_request_matches_name_forms() {
        // No env var set in unit tests: only exercise the parser via the
        // name-matching logic through decode; full match is covered by the
        // integration path. Guard that absent env yields None.
        assert!(replay_request("some::module::test_name").is_none());
    }
}
