//! Minimal re-implementation of the subset of the
//! [criterion](https://crates.io/crates/criterion) API used by this
//! workspace's benches. The build environment has no network access, so the
//! real crate cannot be fetched.
//!
//! Each benchmark runs a short warm-up followed by a fixed measurement
//! budget and prints mean time per iteration (plus throughput when set).
//! There is no statistical analysis, plotting, or baseline storage; the
//! point is that `cargo bench` runs and reports comparable numbers, and
//! that bench code keeps compiling.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimiser from deleting the
/// computation under measurement.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Work-per-iteration declaration used to report rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
    measurement: Duration,
}

impl Bencher {
    /// Run `f` repeatedly within the measurement budget and record the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one call (also primes caches/allocations).
        black_box(f());
        let budget = self.measurement;
        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the work per iteration for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Accepted for API compatibility; the shim uses a fixed time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            mean_ns: 0.0,
            measurement: self.criterion.measurement,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.mean_ns, self.throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mean_ns: 0.0,
            measurement: self.criterion.measurement,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.mean_ns, self.throughput);
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 / mean_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MB/s)", n as f64 / mean_ns * 1e3)
        }
        None => String::new(),
    };
    if mean_ns >= 1e6 {
        println!("{name:<50} {:>12.3} ms/iter{rate}", mean_ns / 1e6);
    } else if mean_ns >= 1e3 {
        println!("{name:<50} {:>12.3} µs/iter{rate}", mean_ns / 1e3);
    } else {
        println!("{name:<50} {mean_ns:>12.1} ns/iter{rate}");
    }
}

/// Benchmark runner.
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Short budget: CI runs every bench binary; keep them quick.
        Criterion {
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mean_ns: 0.0,
            measurement: self.measurement,
        };
        f(&mut b);
        report(name, b.mean_ns, None);
        self
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; ignore them.
            let bench_requested = std::env::args().any(|a| a == "--bench");
            let test_mode = std::env::args().any(|a| a == "--test");
            if test_mode && !bench_requested {
                return; // compile/run check only
            }
            $( $group(); )+
        }
    };
}
