//! Why gateways must provide mutual exclusivity on shared FIFOs (paper
//! §V-G, Fig. 9).
//!
//! Two producer/consumer pairs share one FIFO. SDF semantics promise that a
//! produced token is *immediately* available to its consumer — but with
//! naive interleaved sharing, stream-0 tokens queue behind stream-1 tokens
//! (head-of-line blocking) and arrive late: the implementation no longer
//! refines the model, so every guarantee derived from the model is void.
//!
//! The gateways fix this by multiplexing whole blocks and draining the FIFO
//! before switching streams: within a block the FIFO belongs to one stream,
//! so its tokens are available immediately, as the model assumes.
//!
//! ```sh
//! cargo run --example shared_fifo_blocking
//! ```

use std::collections::VecDeque;
use streamgate::dataflow::{check_refinement, ArrivalTrace, RefinementOutcome};

/// One token in the shared FIFO: (owning stream, production time).
type Token = (usize, u64);

/// Simulate two streams through one FIFO.
///
/// * stream 0: producer every 4 cycles, consumer takes 1 cycle/token;
/// * stream 1: producer every 4 cycles, consumer takes 9 cycles/token
///   (slow — the head-of-line blocker).
///
/// `block_multiplexed`: if false, producers interleave freely (Fig. 9's
/// broken sharing); if true, a gateway admits alternating blocks of
/// `block` tokens and waits for the FIFO to drain before switching.
fn run(block_multiplexed: bool, block: usize, horizon: u64) -> [ArrivalTrace; 2] {
    let mut fifo: VecDeque<Token> = VecDeque::new();
    let mut arrivals: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
    let mut consumer_busy_until = [0u64; 2];
    let consumer_cost = [1u64, 9u64];
    let mut produced = [0usize; 2];
    // Gateway state for the block-multiplexed variant.
    let mut active = 0usize;
    let mut in_block = 0usize;

    for now in 0..horizon {
        // --- production ---
        if now % 4 == 0 {
            if block_multiplexed {
                // Only the active stream may produce into the shared FIFO.
                if in_block < block {
                    fifo.push_back((active, now));
                    produced[active] += 1;
                    in_block += 1;
                }
            } else {
                // Free interleaving: both streams produce.
                fifo.push_back((0, now));
                fifo.push_back((1, now));
                produced[0] += 1;
                produced[1] += 1;
            }
        }
        // --- consumption from the head only ---
        if let Some(&(s, _t)) = fifo.front() {
            if now >= consumer_busy_until[s] {
                let (s, _t) = fifo.pop_front().unwrap();
                arrivals[s].push(now);
                consumer_busy_until[s] = now + consumer_cost[s];
            }
        }
        // --- gateway switch when block done and FIFO drained ---
        if block_multiplexed && in_block >= block && fifo.is_empty() {
            active = 1 - active;
            in_block = 0;
        }
    }
    [
        ArrivalTrace::new(arrivals[0].clone()),
        ArrivalTrace::new(arrivals[1].clone()),
    ]
}

/// The model's promise for stream 0: a token produced at `t` is available
/// at `t` (plus its own consumer's pace) — no interference from stream 1.
fn dedicated_reference(n: usize, period: u64, consumer_cost: u64) -> ArrivalTrace {
    let mut arrivals = Vec::with_capacity(n);
    let mut busy = 0u64;
    for k in 0..n {
        let t = k as u64 * period;
        let start = t.max(busy);
        arrivals.push(start);
        busy = start + consumer_cost;
    }
    ArrivalTrace::new(arrivals)
}

fn main() {
    let horizon = 4000;

    // --- broken sharing ---
    let shared = run(false, 0, horizon);
    let reference = dedicated_reference(shared[0].len(), 4, 1);
    println!("interleaved sharing, stream 0 vs its dedicated-FIFO model:");
    match check_refinement(&shared[0], &reference) {
        RefinementOutcome::LateToken {
            index,
            refined,
            abstracted,
        } => {
            println!(
                "  REFINEMENT VIOLATED: token {index} arrives at {refined}, model promised {abstracted}"
            );
            let lag = shared[0]
                .times
                .iter()
                .zip(&reference.times)
                .map(|(a, b)| a.saturating_sub(*b))
                .max()
                .unwrap();
            println!("  worst lateness grows to {lag} cycles (head-of-line blocking)");
        }
        other => println!("  unexpected: {other:?}"),
    }

    // --- gateway-style block multiplexing ---
    let gated = run(true, 8, horizon);
    println!("\nblock multiplexing with drain-before-switch (the gateways):");
    // Within each admitted block, stream-0 tokens are at the FIFO head the
    // moment they are produced: compare production-to-availability lag.
    let max_lag = gated[0]
        .times
        .windows(2)
        .map(|w| w[1] - w[0])
        .max()
        .unwrap_or(0);
    println!(
        "  stream 0 delivered {} tokens, max inter-arrival {} cycles",
        gated[0].len(),
        max_lag
    );
    println!(
        "  stream 1 delivered {} tokens (mutual exclusivity preserved both)",
        gated[1].len()
    );
    println!(
        "\nconclusion: without the exit-gateway's drain + check-for-space the\n\
         shared FIFO breaks the-earlier-the-better refinement; with it, each\n\
         block sees an exclusive FIFO and the CSDF model stays valid."
    );
}
