//! The paper's demonstrator (Fig. 10): decode the stereo audio of a PAL
//! broadcast in real time, with *one* CORDIC and *one* FIR+8:1 accelerator
//! shared by four streams through a single gateway pair.
//!
//! Runs the full cycle-level system on a laptop-scale configuration (same
//! ≈95 % chain utilisation as the paper's operating point) and verifies the
//! decoded tones against the pure-DSP reference chain.
//!
//! ```sh
//! cargo run --release --example pal_stereo_decoder
//! ```

use streamgate::core::{build_pal_system, solve_blocksizes_checked, PalSystemConfig};
use streamgate::dsp::{snr_db, tone_power};

fn main() {
    let cfg = PalSystemConfig::scaled_default();
    let problem = cfg.sharing_problem();
    println!(
        "chain utilisation {:.1} % — {} streams over 2 shared accelerators",
        problem.utilisation().to_f64() * 100.0,
        problem.streams.len()
    );

    let minimum = solve_blocksizes_checked(&problem).expect("feasible");
    println!("Algorithm 1 minimum block sizes: {:?}", minimum.etas);
    println!("configured block sizes:          {:?}", cfg.etas);
    assert!(problem.satisfies_throughput(&cfg.etas));

    let mut pal = build_pal_system(&cfg);
    // Simulate half a second of platform time.
    let cycles = cfg.clock_hz / 2;
    println!("\nsimulating {cycles} cycles …");
    pal.system.run(cycles);

    let (left, right) = pal.take_audio();
    let fs_audio = cfg.pal.audio_rate();
    println!(
        "decoded {} stereo samples ({:.2} s of audio)",
        left.len(),
        left.len() as f64 / fs_audio
    );

    // Real-time check: achieved audio rate vs required.
    let required = fs_audio / cfg.clock_hz as f64;
    let achieved = pal.audio_rate_per_cycle();
    println!(
        "audio rate: achieved {:.6} samples/cycle, required {:.6} → {}",
        achieved,
        required,
        if achieved >= 0.95 * required {
            "REAL-TIME MET"
        } else {
            "UNDERRUN"
        }
    );

    // Audio correctness: the left tone lands in L, the right tone in R.
    let skip = 64.min(left.len() / 2);
    let (f_l, f_r) = cfg.tones;
    let l = &left[skip..];
    let r = &right[skip..];
    println!("\nchannel separation:");
    println!(
        "  L: {:.4} power at {f_l} Hz vs {:.6} at {f_r} Hz",
        tone_power(l, f_l, fs_audio),
        tone_power(l, f_r, fs_audio)
    );
    println!(
        "  R: {:.4} power at {f_r} Hz vs {:.6} at {f_l} Hz",
        tone_power(r, f_r, fs_audio),
        tone_power(r, f_l, fs_audio)
    );
    println!("  R-channel SNR: {:.1} dB", snr_db(r, f_r, fs_audio));

    // Accelerator sharing effectiveness.
    println!("\ngateway statistics:");
    let gw = &pal.system.gateways[0];
    for s in 0..4 {
        let st = gw.stream(s);
        println!(
            "  {:<10} blocks={:>4} samples_out={:>7}",
            st.name, st.blocks_done, st.samples_out
        );
    }
    let total = pal.system.cycle() as f64;
    println!(
        "  reconfiguration: {:.1} % of time, DMA streaming: {:.1} %, idle: {:.1} %",
        100.0 * gw.reconfig_cycles_total as f64 / total,
        100.0 * gw.dma_busy_cycles as f64 / total,
        100.0 * gw.idle_cycles as f64 / total,
    );
    for (i, name) in ["CORDIC", "FIR+D"].iter().enumerate() {
        println!(
            "  {name} utilisation: {:.1} % (serves all 4 streams)",
            100.0
                * pal
                    .system
                    .accel_utilisation(streamgate::platform::AccelId(i))
        );
    }
}
