//! Explore the block-size design space: feasibility boundary, the paper's
//! published operating point, and the non-monotone buffer behaviour that
//! makes naive "smallest block" choices wrong.
//!
//! ```sh
//! cargo run --example block_size_optimizer
//! ```

use streamgate::core::params::PAL_CLOCK_HZ;
use streamgate::core::{fig8_example, solve_blocksizes_checked, SharingProblem};

fn main() {
    // 1. The paper's PAL operating point.
    println!("== PAL decoder block sizes vs clock ==");
    println!(
        "{:>12}  {:>10}  {:>28}",
        "clock (Hz)", "util %", "η (front ×2, back ×2)"
    );
    for clock in [
        96_000_000u64,
        97_000_000,
        99_857_500,
        110_000_000,
        150_000_000,
    ] {
        let prob = SharingProblem::pal_decoder(clock);
        match solve_blocksizes_checked(&prob) {
            Ok(sol) => println!(
                "{:>12}  {:>10.2}  {:>28}",
                clock,
                prob.utilisation().to_f64() * 100.0,
                format!("{:?}", sol.etas)
            ),
            Err(e) => println!(
                "{clock:>12}  {:>10.2}  {e}",
                prob.utilisation().to_f64() * 100.0
            ),
        }
    }
    println!(
        "\ncalibrated clock {} Hz reproduces the paper's (10136, 1267); note how\n\
         block sizes explode as utilisation → 100 % (η ∝ 1/(1−U)).",
        PAL_CLOCK_HZ
    );

    // 2. Buffer capacity vs block size: the Fig. 8 non-monotonicity.
    println!("\n== minimum buffer capacity vs block size (Fig. 8) ==");
    println!("{:>4}  {:>8}", "η", "min α");
    for (eta, alpha) in fig8_example(1..=14) {
        match alpha {
            Some(a) => println!("{eta:>4}  {a:>8}"),
            None => println!("{eta:>4}  infeasible"),
        }
    }
    println!(
        "\nsmaller blocks need MORE buffer where the throughput constraint is\n\
         tight (double-buffering) — picking the smallest feasible η does not\n\
         minimise memory."
    );
}
