//! Accelerator sharing *between applications*: two independent radios
//! running simultaneously on the MPSoC share one accelerator chain — the
//! motivating scenario of the paper's introduction ("accelerators can be
//! shared … by data streams from different radios that are executed
//! simultaneously on the multiprocessor system").
//!
//! Radio A demodulates an FM channel; radio B is a narrowband decimating
//! receiver. Both are described with the §IV-B chain-description library
//! and multiplexed by one gateway pair; Algorithm 1 picks block sizes that
//! keep both radios real-time.
//!
//! ```sh
//! cargo run --release --example multi_radio
//! ```

use streamgate::core::{
    build_shared_system, solve_blocksizes_checked, AccelDef, GatewayParams, SharingProblem,
    StreamDef, StreamSpec, SystemSpec,
};
use streamgate::dsp::{Complex, Decimator, FmDemodulator};
use streamgate::ilp::rat;
use streamgate::platform::{Sample, StreamKernel};

/// CORDIC FM discriminator as a platform kernel.
struct Fm(FmDemodulator);
impl StreamKernel for Fm {
    fn process(&mut self, s: Sample) -> Option<Sample> {
        Some((self.0.process(Complex::new(s.0, s.1)), 0.0))
    }
    fn state_words(&self) -> usize {
        2
    }
    fn name(&self) -> &str {
        "fm"
    }
}

/// FIR decimator as a platform kernel.
struct Dec(Decimator);
impl StreamKernel for Dec {
    fn process(&mut self, s: Sample) -> Option<Sample> {
        self.0.process(Complex::new(s.0, s.1)).map(|c| (c.re, c.im))
    }
    fn state_words(&self) -> usize {
        self.0.save_state().size_samples() * 2 + 1
    }
    fn name(&self) -> &str {
        "decimator"
    }
}

fn main() {
    // Shared chain: one FM-capable CORDIC stage + one FIR+4:1 stage.
    let fs_a = 80_000.0; // radio A sample rate (Hz)
    let fs_b = 40_000.0; // radio B sample rate (Hz)
    let clock = 2_000_000u64;
    let reconfig = 150u64;

    // Analysis first: do block sizes exist, and how big must they be?
    let problem = SharingProblem {
        params: GatewayParams {
            epsilon: 4,
            rho_a: 1,
            delta: 1,
        },
        streams: vec![
            StreamSpec {
                name: "radio-A".into(),
                mu: rat(fs_a as i128, clock as i128),
                reconfig,
            },
            StreamSpec {
                name: "radio-B".into(),
                mu: rat(fs_b as i128, clock as i128),
                reconfig,
            },
        ],
    };
    println!(
        "two radios share one chain — utilisation {:.1} %",
        problem.utilisation().to_f64() * 100.0
    );
    let sol = solve_blocksizes_checked(&problem).expect("feasible");
    println!(
        "Algorithm 1 block sizes: {:?} (γ = {} cycles)\n",
        sol.etas, sol.gamma
    );

    // Round block sizes up to the decimation granularity.
    let eta_a = sol.etas[0].div_ceil(4) * 4;
    let eta_b = sol.etas[1].div_ceil(4) * 4;

    let spec = SystemSpec {
        chain: vec![AccelDef::new("CORDIC", 1), AccelDef::new("FIR+4:1", 1)],
        epsilon: 4,
        delta: 1,
        ni_depth: 2,
        streams: vec![
            StreamDef {
                name: "radio-A".into(),
                eta_in: eta_a as usize,
                eta_out: (eta_a / 4) as usize,
                reconfig,
                kernels: vec![
                    Box::new(Fm(FmDemodulator::new(5_000.0, fs_a))),
                    Box::new(Dec(Decimator::design(33, 4, fs_a))),
                ],
                input_capacity: 4 * eta_a as usize,
                output_capacity: 4 * eta_a as usize,
            },
            StreamDef {
                name: "radio-B".into(),
                eta_in: eta_b as usize,
                eta_out: (eta_b / 4) as usize,
                reconfig,
                kernels: vec![
                    Box::new(Fm(FmDemodulator::new(2_000.0, fs_b))),
                    Box::new(Dec(Decimator::design(33, 4, fs_b))),
                ],
                input_capacity: 4 * eta_b as usize,
                output_capacity: 4 * eta_b as usize,
            },
        ],
    };
    let mut b = build_shared_system(spec);

    // Drive both radios with FM tones and run half a second.
    use streamgate::dsp::FmModulator;
    let mut mod_a = FmModulator::new(0.0, 5_000.0, fs_a);
    let mut mod_b = FmModulator::new(0.0, 2_000.0, fs_b);
    let horizon = clock / 2;
    let (mut idx_a, mut idx_b) = (0u64, 0u64);
    let (mut acc_a, mut acc_b) = (0u64, 0u64);
    let mut out_a = Vec::new();
    let mut out_b = Vec::new();
    for _ in 0..horizon {
        acc_a += fs_a as u64;
        while acc_a >= clock {
            acc_a -= clock;
            let t = idx_a as f64 / fs_a;
            let iq = mod_a.process((std::f64::consts::TAU * 600.0 * t).sin());
            b.push_input(0, (iq.re, iq.im));
            idx_a += 1;
        }
        acc_b += fs_b as u64;
        while acc_b >= clock {
            acc_b -= clock;
            let t = idx_b as f64 / fs_b;
            let iq = mod_b.process((std::f64::consts::TAU * 150.0 * t).sin());
            b.push_input(1, (iq.re, iq.im));
            idx_b += 1;
        }
        b.system.step();
        while let Some(s) = b.pop_output(0) {
            out_a.push(s.0);
        }
        while let Some(s) = b.pop_output(1) {
            out_b.push(s.0);
        }
    }

    let fs_out_a = fs_a / 4.0;
    let fs_out_b = fs_b / 4.0;
    println!(
        "radio A: {} blocks, {} output samples ({:.2} s of audio)",
        b.blocks_done(0),
        out_a.len(),
        out_a.len() as f64 / fs_out_a
    );
    println!(
        "radio B: {} blocks, {} output samples ({:.2} s of audio)",
        b.blocks_done(1),
        out_b.len(),
        out_b.len() as f64 / fs_out_b
    );

    use streamgate::dsp::{snr_db, tone_power};
    let skip = 40;
    println!(
        "\nradio A 600 Hz tone power {:.3}, SNR {:.1} dB",
        tone_power(&out_a[skip..], 600.0, fs_out_a),
        snr_db(&out_a[skip..], 600.0, fs_out_a)
    );
    println!(
        "radio B 150 Hz tone power {:.3}, SNR {:.1} dB",
        tone_power(&out_b[skip..], 150.0, fs_out_b),
        snr_db(&out_b[skip..], 150.0, fs_out_b)
    );

    // Real-time check for both applications.
    let need_a = (horizon as f64 / clock as f64) * fs_out_a;
    let need_b = (horizon as f64 / clock as f64) * fs_out_b;
    println!(
        "\nreal-time: A {}/{:.0}, B {}/{:.0} → {}",
        out_a.len(),
        need_a,
        out_b.len(),
        need_b,
        if out_a.len() as f64 >= 0.9 * need_a && out_b.len() as f64 >= 0.9 * need_b {
            "BOTH RADIOS MET"
        } else {
            "UNDERRUN"
        }
    );
}
