//! Quickstart: size the block granularity and buffers for a set of streams
//! sharing an accelerator chain, then verify the bounds on the cycle-level
//! platform.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use streamgate::core::{
    minimum_stream_buffers, solve_blocksizes_checked, GatewayParams, SharingProblem, StreamSpec,
};
use streamgate::ilp::rat;

fn main() {
    // Two radio streams share one accelerator chain behind a gateway pair.
    // ε = 4 cycles/sample at the entry DMA, accelerators at 1 cycle/sample,
    // δ = 1 at the exit; switching streams costs R = 60 cycles.
    let problem = SharingProblem {
        params: GatewayParams {
            epsilon: 4,
            rho_a: 1,
            delta: 1,
        },
        streams: vec![
            StreamSpec {
                name: "wideband".into(),
                mu: rat(1, 10), // 1 sample / 10 cycles
                reconfig: 60,
            },
            StreamSpec {
                name: "narrowband".into(),
                mu: rat(1, 40),
                reconfig: 60,
            },
        ],
    };

    println!(
        "chain utilisation: {:.1} %",
        problem.utilisation().to_f64() * 100.0
    );
    assert!(problem.is_feasible(), "no block size can meet these rates");

    // Algorithm 1: minimum block sizes (ILP + independent fixpoint solver).
    let sol = solve_blocksizes_checked(&problem).expect("feasible");
    println!("\nminimum block sizes (Algorithm 1):");
    for (s, eta) in problem.streams.iter().zip(&sol.etas) {
        println!(
            "  {:<12} η = {:>5}   τ̂ = {:>6} cycles",
            s.name,
            eta,
            problem.tau_hat(0, *eta)
        );
    }
    println!("  round time γ = {} cycles", sol.gamma);

    // Eq. 5 sanity: the throughput constraint holds, and η−1 would not.
    assert!(problem.satisfies_throughput(&sol.etas));

    // Buffer capacities for each stream at its minimum block size.
    println!("\nminimum buffer capacities:");
    for (s, spec) in problem.streams.iter().enumerate() {
        let rho_p = spec.mu.recip().floor() as u64;
        let b = minimum_stream_buffers(&problem, s, &sol.etas, rho_p, 1, 65536)
            .expect("buffers exist for solver block sizes");
        println!(
            "  {:<12} α0 = {:>4}  α3 = {:>4}  (total {} samples)",
            spec.name,
            b.alpha0,
            b.alpha3,
            b.total()
        );
    }

    println!("\nok: streams can share the chain with guaranteed throughput");
}
