//! # streamgate
//!
//! A full Rust reproduction of *"Real-Time Multiprocessor Architecture for
//! Sharing Stream Processing Accelerators"* (B.H.J. Dekens, M.J.G. Bekooij,
//! G.J.M. Smit — IEEE IPDPSW 2015, DOI 10.1109/IPDPSW.2015.147).
//!
//! Stream-processing accelerators (a CORDIC, a FIR low-pass + down-sampler)
//! are *shared* between several real-time streams by entry-/exit-gateway
//! pairs that multiplex whole blocks of data, check for output space before
//! admitting a block, and save/restore accelerator state on every switch.
//! A cyclo-static dataflow model of the arrangement yields worst-case
//! bounds; an ILP computes the minimum block sizes that still meet every
//! stream's throughput; buffer capacities are sized exactly — and shown to
//! be non-monotone in the block size.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`ilp`] | exact-rational simplex + branch-and-bound ILP solver |
//! | [`dataflow`] | (C)SDF graphs, MCM, self-timed simulation, buffer sizing, refinement |
//! | [`ring`] | cycle-level dual-ring interconnect with credit flow control |
//! | [`platform`] | MPSoC tile simulator: processors, accelerators, gateways, C-FIFOs |
//! | [`dsp`] | CORDIC, FIR/decimator, FM demodulation, PAL stereo synthesis |
//! | [`core`] | the paper's contribution: models, Algorithm 1, deployment |
//! | [`hwcost`] | Virtex-6 resource model, sharing savings (Table I / Fig. 11) |
//! | [`analysis`] | static deployment analyzer: rules A1–A6, `streamgate-analyze` |
//!
//! ## Quickstart
//!
//! ```
//! use streamgate::core::{solve_blocksizes_checked, SharingProblem};
//! use streamgate::core::params::PAL_CLOCK_HZ;
//!
//! // The paper's PAL stereo decoder: four streams over one CORDIC and one
//! // FIR+8:1, multiplexed by a single gateway pair.
//! let problem = SharingProblem::pal_decoder(PAL_CLOCK_HZ);
//! let solution = solve_blocksizes_checked(&problem).unwrap();
//! assert_eq!(solution.etas, vec![10136, 10136, 1267, 1267]); // §VI-A
//! ```

#![warn(missing_docs)]

pub use streamgate_analysis as analysis;
pub use streamgate_core as core;
pub use streamgate_dataflow as dataflow;
pub use streamgate_dsp as dsp;
pub use streamgate_hwcost as hwcost;
pub use streamgate_ilp as ilp;
pub use streamgate_platform as platform;
pub use streamgate_ring as ring;
